//! Epoch-based training and session-level evaluation.
//!
//! # Telemetry
//!
//! Each epoch produces one structured `train_epoch` event carrying the
//! loss decomposition (CE / HSC / AdvLoss / load-balance), and — for
//! gated models while `AMOE_OBS` is set — the mean gate entropy and
//! per-expert dispatch counts. The same event backs both outputs: the
//! JSONL sink (machine-readable, see `amoe_obs`) and the `verbose`
//! stderr line (human-readable), so the two can never drift apart.

use amoe_dataset::{Batch, Batcher, Split};
use amoe_metrics::{log_loss, roc_auc, session_auc, session_ndcg, SessionEval};
use amoe_tensor::pool;

use crate::ranker::{Ranker, StepStats};

/// Training-loop configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Batch size used when scoring the evaluation split.
    pub eval_batch_size: usize,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 256,
            seed: 4242,
            eval_batch_size: 1024,
            verbose: false,
        }
    }
}

/// Evaluation-metric bundle (the columns of the paper's Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalReport {
    /// Mean per-session AUC.
    pub auc: f64,
    /// Mean per-session NDCG over the full ranked list.
    pub ndcg: f64,
    /// Mean per-session NDCG over the top 10 positions.
    pub ndcg_at_10: f64,
    /// Global (pooled) AUC, a secondary diagnostic.
    pub global_auc: f64,
    /// Mean binary log-loss.
    pub log_loss: f64,
    /// Number of sessions that contributed to the session metrics.
    pub sessions: usize,
}

/// Drives a [`Ranker`] through training epochs and evaluations.
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    #[must_use]
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `train` for the configured number of epochs.
    /// Returns the mean loss decomposition of the final epoch.
    ///
    /// Per-step stats are batch means, so the epoch mean weights each
    /// step by its batch's example count. An unweighted mean over steps
    /// would over-weight the trailing partial batch whenever the split
    /// size is not a multiple of `batch_size` — every example counts
    /// once here, regardless of which batch it landed in.
    pub fn fit(&self, model: &mut dyn Ranker, train: &Split) -> StepStats {
        self.fit_epochs(model, train, self.config.epochs)
    }

    /// Refits `model` on a sliding `window` of recent sessions with an
    /// explicit epoch count — the online loop's warm-start entry
    /// point, where the per-refit budget (often a single pass over a
    /// small window) is decoupled from the offline `epochs` setting.
    pub fn fit_window(&self, model: &mut dyn Ranker, window: &Split, epochs: usize) -> StepStats {
        self.fit_epochs(model, window, epochs)
    }

    fn fit_epochs(&self, model: &mut dyn Ranker, train: &Split, epochs: usize) -> StepStats {
        let mut batcher = Batcher::new(train, self.config.batch_size, self.config.seed);
        let mut last = StepStats::default();
        for epoch in 0..epochs {
            let ((), epoch_time) = amoe_obs::timed("trainer.epoch", || {
                let mut sum = StepStats::default();
                let mut examples = 0usize;
                // next_batch returns None exactly once per epoch boundary.
                while let Some(idx) = batcher.next_batch() {
                    let batch = Batch::from_split(train, idx);
                    let w = batch.len() as f32;
                    let s = model.train_step(&batch);
                    sum.loss += s.loss * w;
                    sum.ce += s.ce * w;
                    sum.hsc += s.hsc * w;
                    sum.adv += s.adv * w;
                    sum.load_balance += s.load_balance * w;
                    examples += batch.len();
                }
                let inv = 1.0 / examples.max(1) as f32;
                last = StepStats {
                    loss: sum.loss * inv,
                    ce: sum.ce * inv,
                    hsc: sum.hsc * inv,
                    adv: sum.adv * inv,
                    load_balance: sum.load_balance * inv,
                };
            });
            if self.config.verbose || amoe_obs::enabled() {
                self.report_epoch(model, epoch, epochs, &last, epoch_time);
            }
        }
        last
    }

    /// Builds the `train_epoch` event for one finished epoch and routes
    /// it to the JSONL sink and/or the verbose stderr line.
    fn report_epoch(
        &self,
        model: &mut dyn Ranker,
        epoch: usize,
        epochs: usize,
        stats: &StepStats,
        epoch_time: std::time::Duration,
    ) {
        let mut event = amoe_obs::Event::new("train_epoch")
            .str("model", model.name())
            .u64("epoch", epoch as u64 + 1)
            .u64("epochs", epochs as u64)
            .f64("epoch_secs", epoch_time.as_secs_f64())
            .f64("loss", f64::from(stats.loss))
            .f64("ce", f64::from(stats.ce))
            .f64("hsc", f64::from(stats.hsc))
            .f64("adv", f64::from(stats.adv))
            .f64("load_balance", f64::from(stats.load_balance));
        if let Some(gate) = model.take_gate_telemetry() {
            event = event
                .f64("gate_entropy", gate.mean_entropy())
                .u64_array("dispatch", gate.dispatch.iter().copied());
        }
        amoe_obs::emit(&event);
        if self.config.verbose {
            eprintln!("{}", event.to_human());
        }
    }

    /// Scores every example of `split` in evaluation batches.
    ///
    /// Batches are independent (evaluation mode is stateless), so they
    /// shard across the [`amoe_tensor::pool`] runtime; per-batch score
    /// vectors are concatenated in batch order, which keeps the output
    /// identical to the serial sweep for every `AMOE_THREADS` value.
    #[must_use]
    pub fn score_split(&self, model: &dyn Ranker, split: &Split) -> Vec<f32> {
        let _span = amoe_obs::Span::enter("trainer.score_split");
        let bs = self.config.eval_batch_size.max(1);
        let n_batches = split.len().div_ceil(bs);
        let per_batch = pool::map_tasks(n_batches, |bi| {
            let start = bi * bs;
            let end = (start + bs).min(split.len());
            let idx: Vec<usize> = (start..end).collect();
            let batch = Batch::from_split(split, &idx);
            model.predict(&batch)
        });
        let mut scores = Vec::with_capacity(split.len());
        for s in per_batch {
            scores.extend(s);
        }
        scores
    }

    /// Evaluates `model` on `split` with the paper's session-level
    /// protocol.
    #[must_use]
    pub fn evaluate(&self, model: &dyn Ranker, split: &Split) -> EvalReport {
        let scores = self.score_split(model, split);
        evaluate_scores(&scores, split)
    }
}

/// Computes the metric bundle from precomputed example scores.
///
/// # Panics
/// Panics if `scores.len() != split.len()`.
#[must_use]
pub fn evaluate_scores(scores: &[f32], split: &Split) -> EvalReport {
    assert_eq!(
        scores.len(),
        split.len(),
        "evaluate_scores: {} scores for {} examples",
        scores.len(),
        split.len()
    );
    let labels: Vec<bool> = split.examples.iter().map(|e| e.label).collect();
    let sessions: Vec<SessionEval<'_>> = split
        .sessions
        .iter()
        .map(|r| SessionEval {
            scores: &scores[r.clone()],
            labels: &labels[r.clone()],
        })
        .collect();
    let contributing = sessions
        .iter()
        .filter(|s| s.labels.iter().any(|&l| l) && s.labels.iter().any(|&l| !l))
        .count();
    EvalReport {
        auc: session_auc(&sessions).unwrap_or(0.5),
        ndcg: session_ndcg(&sessions, None).unwrap_or(0.0),
        ndcg_at_10: session_ndcg(&sessions, Some(10)).unwrap_or(0.0),
        global_auc: roc_auc(scores, &labels).unwrap_or(0.5),
        log_loss: log_loss(scores, &labels),
        sessions: contributing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MoeConfig, TowerConfig};
    use crate::models::{DnnModel, MoeModel};
    use crate::ranker::OptimConfig;
    use amoe_dataset::{generate, GeneratorConfig};

    fn fast_cfg() -> MoeConfig {
        MoeConfig {
            n_experts: 4,
            top_k: 2,
            tower: TowerConfig {
                hidden: vec![12, 6],
            },
            ..MoeConfig::default()
        }
    }

    #[test]
    fn fit_and_evaluate_dnn_beats_random() {
        let d = generate(&GeneratorConfig {
            train_sessions: 700,
            test_sessions: 200,
            ..GeneratorConfig::tiny(31)
        });
        let mut model = DnnModel::new(&d.meta, &fast_cfg(), OptimConfig::default());
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 128,
            ..Default::default()
        });
        trainer.fit(&mut model, &d.train);
        let report = trainer.evaluate(&model, &d.test);
        assert!(report.auc > 0.55, "AUC {:.4} not above chance", report.auc);
        assert!(report.ndcg > 0.0 && report.ndcg <= 1.0);
        assert!(report.ndcg_at_10 <= report.ndcg + 1e-9);
        assert!(report.sessions > 0);
    }

    #[test]
    fn fit_moe_learns() {
        let d = generate(&GeneratorConfig {
            train_sessions: 700,
            test_sessions: 200,
            ..GeneratorConfig::tiny(32)
        });
        let mut model = MoeModel::new(&d.meta, fast_cfg(), OptimConfig::default());
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 128,
            ..Default::default()
        });
        let stats = trainer.fit(&mut model, &d.train);
        assert!(stats.loss.is_finite());
        let report = trainer.evaluate(&model, &d.test);
        assert!(report.auc > 0.55, "AUC {:.4}", report.auc);
    }

    #[test]
    fn score_split_covers_every_example() {
        let d = generate(&GeneratorConfig::tiny(33));
        let model = DnnModel::new(&d.meta, &fast_cfg(), OptimConfig::default());
        let trainer = Trainer::new(TrainConfig::default());
        let scores = trainer.score_split(&model, &d.test);
        assert_eq!(scores.len(), d.test.len());
    }

    #[test]
    fn evaluate_scores_perfect_oracle() {
        // Scores equal to labels give AUC = NDCG = 1 on every session
        // containing both classes.
        let d = generate(&GeneratorConfig::tiny(34));
        let scores: Vec<f32> = d
            .test
            .examples
            .iter()
            .map(|e| if e.label { 0.9 } else { 0.1 })
            .collect();
        let r = evaluate_scores(&scores, &d.test);
        assert!((r.auc - 1.0).abs() < 1e-9);
        assert!((r.ndcg - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "evaluate_scores")]
    fn evaluate_scores_length_mismatch_panics() {
        let d = generate(&GeneratorConfig::tiny(35));
        let _ = evaluate_scores(&[0.5], &d.test);
    }

    /// Stub ranker whose per-step loss is the batch's mean label — a
    /// genuine per-example mean, like the real models'. The weighted
    /// epoch mean must then equal the split's overall label mean no
    /// matter how the epoch was batched.
    struct MeanLabelRanker;

    impl Ranker for MeanLabelRanker {
        fn name(&self) -> String {
            "mean-label-stub".into()
        }
        fn train_step(&mut self, batch: &Batch) -> StepStats {
            let pos = batch.labels.as_slice().iter().sum::<f32>();
            StepStats {
                loss: pos / batch.len() as f32,
                ..StepStats::default()
            }
        }
        fn predict(&self, batch: &Batch) -> Vec<f32> {
            vec![0.5; batch.len()]
        }
        fn num_parameters(&self) -> usize {
            0
        }
    }

    #[test]
    fn epoch_mean_weights_trailing_partial_batch_by_size() {
        let d = generate(&GeneratorConfig::tiny(36));
        let n = d.train.len();
        // A batch size that leaves a small trailing remainder, so the
        // last batch holds fewer examples than the rest. An unweighted
        // mean over steps would over-weight that remainder.
        let batch_size = (n - 3) / 2;
        assert!(
            !n.is_multiple_of(batch_size),
            "test needs a partial trailing batch"
        );
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size,
            ..Default::default()
        });
        let stats = trainer.fit(&mut MeanLabelRanker, &d.train);
        let overall = d.train.examples.iter().filter(|e| e.label).count() as f32 / n as f32;
        assert!(
            (stats.loss - overall).abs() < 1e-6,
            "epoch mean {} != split label mean {}",
            stats.loss,
            overall
        );
    }
}
