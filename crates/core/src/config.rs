//! Model configuration.

use amoe_dataset::DatasetMeta;

/// Which features feed the inference gate (paper Table 5 ablation).
///
/// The paper's finding — reproduced by the `table5` experiment — is that
/// the sub-category embedding **alone** works best: query-side purity
/// guarantees one expert set per query session, and extra features inject
/// noise that activates the wrong experts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateInput {
    /// Sub-category embedding only (the paper's default).
    Sc,
    /// Top-category + sub-category embeddings.
    TcSc,
    /// Query id + TC + SC embeddings.
    QueryTcSc,
    /// User segment + TC + SC embeddings.
    UserTcSc,
    /// Everything the main tower sees (embeddings + numeric features).
    All,
}

/// Expert/DNN tower shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TowerConfig {
    /// Hidden layer widths (the output layer of width 1 is implicit).
    /// Paper: `[512, 256]`; scaled default `[32, 16]`.
    pub hidden: Vec<usize>,
}

impl Default for TowerConfig {
    fn default() -> Self {
        TowerConfig {
            hidden: vec![32, 16],
        }
    }
}

/// Full configuration of the MoE family (and the DNN/MMoE baselines,
/// which reuse the shared fields).
#[derive(Clone, Debug)]
pub struct MoeConfig {
    /// Total number of expert towers `N` (paper default 10).
    pub n_experts: usize,
    /// Active experts per example `K` (paper default 4).
    pub top_k: usize,
    /// Disagreeing experts per example `D` (paper default 1); only used
    /// when `adversarial` is set.
    pub n_adversarial: usize,
    /// Enables the adversarial regularizer (Adv-MoE, Adv & HSC-MoE).
    pub adversarial: bool,
    /// Enables the Hierarchical Soft Constraint (HSC-MoE, Adv & HSC-MoE).
    pub hsc: bool,
    /// λ₁, the HSC weight in the objective (paper default 1e-3).
    pub lambda1: f32,
    /// λ₂, the AdvLoss weight in the objective (paper default 1e-3).
    pub lambda2: f32,
    /// Weight of the Shazeer-style load-balancing (importance CV²) loss;
    /// 0 disables. The paper inherits the mechanism from its ref \[24\].
    pub load_balance: f32,
    /// Trainable noisy gating (Noisy Top-K, Shazeer Eq. 4); disabled at
    /// evaluation time automatically.
    pub noisy_gating: bool,
    /// Embedding dimension for every sparse feature (paper: 16; ours: 8).
    pub emb_dim: usize,
    /// Expert tower shape.
    pub tower: TowerConfig,
    /// Gate input features (Table 5 ablation; default SC only).
    pub gate_input: GateInput,
    /// Parameter-initialisation / noise seed.
    pub seed: u64,
}

impl Default for MoeConfig {
    fn default() -> Self {
        MoeConfig {
            n_experts: 10,
            top_k: 4,
            n_adversarial: 1,
            adversarial: false,
            hsc: false,
            lambda1: 1e-3,
            lambda2: 1e-3,
            load_balance: 1e-2,
            noisy_gating: true,
            emb_dim: 8,
            tower: TowerConfig::default(),
            gate_input: GateInput::Sc,
            seed: 17,
        }
    }
}

impl MoeConfig {
    /// The plain MoE baseline.
    #[must_use]
    pub fn moe() -> Self {
        Self::default()
    }

    /// Adv-MoE: adversarial regularization only.
    #[must_use]
    pub fn adv_moe() -> Self {
        MoeConfig {
            adversarial: true,
            ..Self::default()
        }
    }

    /// HSC-MoE: hierarchical soft constraint only.
    #[must_use]
    pub fn hsc_moe() -> Self {
        MoeConfig {
            hsc: true,
            ..Self::default()
        }
    }

    /// Adv & HSC-MoE: the paper's best candidate.
    #[must_use]
    pub fn adv_hsc_moe() -> Self {
        MoeConfig {
            adversarial: true,
            hsc: true,
            ..Self::default()
        }
    }

    /// Returns the config with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates against a dataset's vocabulary metadata.
    ///
    /// # Panics
    /// Panics on inconsistent settings.
    pub fn validate(&self, meta: &DatasetMeta) {
        assert!(self.n_experts >= 2, "need at least 2 experts");
        assert!(
            self.top_k >= 1 && self.top_k <= self.n_experts,
            "top_k {} out of 1..={}",
            self.top_k,
            self.n_experts
        );
        if self.adversarial {
            assert!(
                self.n_adversarial >= 1 && self.n_adversarial <= self.n_experts - self.top_k,
                "n_adversarial {} out of 1..={} (N - K idle experts)",
                self.n_adversarial,
                self.n_experts - self.top_k
            );
        }
        assert!(self.lambda1 >= 0.0 && self.lambda2 >= 0.0 && self.load_balance >= 0.0);
        assert!(self.emb_dim > 0, "emb_dim must be > 0");
        assert!(!self.tower.hidden.is_empty(), "tower needs hidden layers");
        assert!(meta.sc_vocab > 0 && meta.tc_vocab > 0);
    }

    /// Width of the model input vector `X` (Eq. 2): five sparse features
    /// embedded at `emb_dim` plus the numeric features.
    #[must_use]
    pub fn input_dim(&self, meta: &DatasetMeta) -> usize {
        5 * self.emb_dim + meta.n_numeric
    }

    /// Width of the inference-gate input under the configured ablation.
    #[must_use]
    pub fn gate_input_dim(&self, meta: &DatasetMeta) -> usize {
        match self.gate_input {
            GateInput::Sc => self.emb_dim,
            GateInput::TcSc => 2 * self.emb_dim,
            GateInput::QueryTcSc | GateInput::UserTcSc => 3 * self.emb_dim,
            GateInput::All => self.input_dim(meta) + self.emb_dim, // + TC emb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> DatasetMeta {
        DatasetMeta {
            sc_vocab: 96,
            tc_vocab: 12,
            brand_vocab: 1000,
            shop_vocab: 100,
            user_segment_vocab: 8,
            price_bucket_vocab: 10,
            query_vocab: 500,
            n_numeric: 8,
        }
    }

    #[test]
    fn presets_match_names() {
        assert!(!MoeConfig::moe().adversarial && !MoeConfig::moe().hsc);
        assert!(MoeConfig::adv_moe().adversarial && !MoeConfig::adv_moe().hsc);
        assert!(!MoeConfig::hsc_moe().adversarial && MoeConfig::hsc_moe().hsc);
        let best = MoeConfig::adv_hsc_moe();
        assert!(best.adversarial && best.hsc);
    }

    #[test]
    fn default_validates() {
        MoeConfig::adv_hsc_moe().validate(&meta());
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn k_above_n_panics() {
        let cfg = MoeConfig {
            n_experts: 4,
            top_k: 5,
            ..Default::default()
        };
        cfg.validate(&meta());
    }

    #[test]
    #[should_panic(expected = "n_adversarial")]
    fn too_many_adversarial_panics() {
        let cfg = MoeConfig {
            n_experts: 6,
            top_k: 4,
            n_adversarial: 3,
            adversarial: true,
            ..Default::default()
        };
        cfg.validate(&meta());
    }

    #[test]
    fn input_dims() {
        let cfg = MoeConfig::default();
        let m = meta();
        assert_eq!(cfg.input_dim(&m), 5 * 8 + 8);
        assert_eq!(cfg.gate_input_dim(&m), 8);
        let all = MoeConfig {
            gate_input: GateInput::All,
            ..Default::default()
        };
        // input X (48) plus the TC embedding (8).
        assert_eq!(all.gate_input_dim(&m), 48 + 8);
    }
}
