#![warn(missing_docs)]

//! Adversarial Mixture of Experts with Category Hierarchy Soft Constraint.
//!
//! This crate is the reproduction's primary contribution: the complete
//! model zoo and training objective from *"Adversarial Mixture Of Experts
//! with Category Hierarchy Soft Constraint"* (Xiao et al., ICDE 2021).
//!
//! # The model (paper Sec. 4, Fig. 4)
//!
//! A (query, product) example is encoded as the concatenation of sparse
//! feature embeddings and normalised numeric features (Eq. 2, module
//! [`features`]). `N` expert MLP towers score the example; a **noisy
//! top-K inference gate** fed solely with the query's *sub-category*
//! embedding mixes the top `K` experts (Eq. 3–8, module [`gating`]).
//! Two additions distinguish the paper's best model:
//!
//! * **Hierarchical Soft Constraint** (Eq. 9–11, [`losses::hsc_loss`]):
//!   a *constraint gate* fed with the *top-category* embedding produces a
//!   reference distribution; the squared gap between the two gate
//!   distributions on the top-K coordinates is penalised, so sibling
//!   sub-categories converge to similar expert subsets and small
//!   categories borrow statistical strength from their siblings.
//! * **Adversarial regularization** (Eq. 12, [`losses::adversarial_loss`]):
//!   each step samples `D` idle "disagreeing" experts and *rewards* their
//!   squared sigmoid-output distance from the active top-K experts,
//!   pushing experts toward diverse viewpoints.
//!
//! Training minimises `J = CE + λ₁·HSC − λ₂·AdvLoss` (Eq. 13–14) with the
//! paper's gradient routing (Eq. 15–16): expert towers receive no HSC
//! gradient — which holds by construction here, since HSC is a function
//! of the gate parameters only and the top-K masks are non-differentiable
//! constants.
//!
//! # Model zoo (paper Sec. 5.1.3)
//!
//! [`models::MoeModel`] covers MoE / Adv-MoE / HSC-MoE / Adv & HSC-MoE via
//! [`MoeConfig`] flags; [`models::DnnModel`] is the DNN baseline and
//! [`models::MmoeModel`] the multi-gate MMoE baseline with category-bucket
//! tasks. All implement [`Ranker`] and train with [`Trainer`].
//!
//! # Serving
//!
//! [`serving::ServingMoe`] is the tape-free inference path that computes
//! only the top-K expert towers per example (expert-major batching), the
//! property that keeps serving cost constant as `N` grows.

pub mod analysis;
pub mod config;
pub mod extraction;
pub mod features;
pub mod finetune;
pub mod gating;
pub mod losses;
pub mod models;
pub mod ranker;
pub mod serving;
pub mod trainer;

pub use config::{GateInput, MoeConfig, TowerConfig};
pub use models::{DnnModel, MmoeModel, MoeModel};
pub use ranker::{Ranker, StepStats};
pub use trainer::{EvalReport, TrainConfig, Trainer};
