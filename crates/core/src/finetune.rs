//! Per-expert fine-tuning (the paper's Sec. 6 future-work item:
//! "fine-tune individual expert models to suit evolving business
//! requirement or training data ... assess transfer learning potential
//! based on the component expert models").
//!
//! [`FineTuner`] continues training a [`MoeModel`] on a (typically
//! single-category) split while freezing everything except a chosen set
//! of expert towers — gradients of frozen parameters are zeroed before
//! each optimizer step, so gates, embeddings and the other experts stay
//! exactly as the base model left them.

use amoe_dataset::{Batch, Batcher, Split};
use amoe_nn::optim::{Adam, Optimizer};

use crate::models::MoeModel;
use crate::ranker::StepStats;

/// Fine-tunes a subset of experts of a trained MoE.
pub struct FineTuner {
    /// Parameter-name prefixes that stay trainable (e.g. `"expert3."`);
    /// everything else is frozen.
    trainable_prefixes: Vec<String>,
    optimizer: Adam,
}

impl FineTuner {
    /// Fine-tunes exactly the given expert towers.
    ///
    /// # Panics
    /// Panics if `experts` is empty or any index exceeds the model's
    /// expert count.
    #[must_use]
    pub fn for_experts(model: &MoeModel, experts: &[usize], lr: f32) -> Self {
        assert!(!experts.is_empty(), "FineTuner: no experts selected");
        let n = model.config().n_experts;
        for &e in experts {
            assert!(e < n, "FineTuner: expert {e} out of {n}");
        }
        FineTuner {
            trainable_prefixes: experts.iter().map(|e| format!("expert{e}.")).collect(),
            optimizer: Adam::adamw(lr, 0.0),
        }
    }

    /// The experts a trained gate assigns to sub-category `sc` — the
    /// natural fine-tuning set when adapting the model to that category.
    #[must_use]
    pub fn for_category(model: &MoeModel, sc: usize, lr: f32) -> Self {
        let extracted = crate::extraction::extract_category_model(model, sc);
        Self::for_experts(model, &extracted.expert_indices, lr)
    }

    /// Whether a parameter name is trainable under this tuner.
    #[must_use]
    pub fn is_trainable(&self, name: &str) -> bool {
        self.trainable_prefixes.iter().any(|p| name.starts_with(p))
    }

    /// One fine-tuning step: full forward/backward, then gradients of
    /// every frozen parameter are zeroed before the update.
    pub fn step(&mut self, model: &mut MoeModel, batch: &Batch) -> StepStats {
        // Run the model's usual step logic up to gradient collection by
        // reusing train_step's machinery would also step the model's own
        // optimizer; instead we re-do the pass explicitly here.
        let stats = model.accumulate_gradients(batch);
        let params = model.params_mut();
        for i in 0..params.len() {
            let id = amoe_nn::ParamId::from_index(i);
            if !self.is_trainable(params.name(id)) {
                let g = params.grad_mut(id);
                g.fill(0.0);
            }
        }
        self.optimizer.step(params);
        stats
    }

    /// Fine-tunes for `epochs` passes over `split`.
    pub fn fit(
        &mut self,
        model: &mut MoeModel,
        split: &Split,
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> StepStats {
        let mut batcher = Batcher::new(split, batch_size, seed);
        let mut last = StepStats::default();
        for _ in 0..epochs {
            while let Some(idx) = batcher.next_batch() {
                let batch = Batch::from_split(split, idx);
                last = self.step(model, &batch);
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MoeConfig, TowerConfig};
    use crate::ranker::OptimConfig;
    use crate::trainer::{TrainConfig, Trainer};
    use amoe_dataset::{generate, GeneratorConfig};

    fn setup() -> (amoe_dataset::Dataset, MoeModel) {
        let d = generate(&GeneratorConfig {
            train_sessions: 500,
            test_sessions: 150,
            ..GeneratorConfig::tiny(66)
        });
        let cfg = MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: TowerConfig {
                hidden: vec![12, 6],
            },
            ..MoeConfig::default()
        };
        let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let t = Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        });
        t.fit(&mut m, &d.train);
        (d, m)
    }

    #[test]
    fn frozen_parameters_do_not_move() {
        let (d, mut m) = setup();
        let gate_before = m
            .params()
            .value(m.params().find("gate.inference.w").unwrap())
            .clone();
        let expert0_before = m
            .params()
            .value(m.params().find("expert0.l0.w").unwrap())
            .clone();
        let expert1_before = m
            .params()
            .value(m.params().find("expert1.l0.w").unwrap())
            .clone();

        let mut tuner = FineTuner::for_experts(&m, &[1], 1e-3);
        tuner.fit(&mut m, &d.train, 1, 128, 9);

        let gate_after = m
            .params()
            .value(m.params().find("gate.inference.w").unwrap())
            .clone();
        let expert0_after = m
            .params()
            .value(m.params().find("expert0.l0.w").unwrap())
            .clone();
        let expert1_after = m
            .params()
            .value(m.params().find("expert1.l0.w").unwrap())
            .clone();

        assert_eq!(gate_before, gate_after, "gate moved while frozen");
        assert_eq!(expert0_before, expert0_after, "frozen expert moved");
        assert_ne!(expert1_before, expert1_after, "trainable expert frozen");
    }

    #[test]
    fn category_finetuning_improves_that_category() {
        let (d, mut m) = setup();
        // Most common predicted SC in the training split.
        let mut counts = vec![0usize; d.meta.sc_vocab];
        for e in &d.train.examples {
            counts[e.pred_sc] += 1;
        }
        let sc = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap();
        let tc = d.hierarchy.parent(sc);
        let cat_train = d.train.filter_tcs(&[tc]);
        let cat_test = d.test.filter_tcs(&[tc]);
        if cat_test.is_empty() || cat_train.is_empty() {
            return; // tiny dataset edge case
        }
        let t = Trainer::new(TrainConfig::default());
        let before = t.evaluate(&m, &cat_test).log_loss;
        let mut tuner = FineTuner::for_category(&m, sc, 1e-3);
        tuner.fit(&mut m, &cat_train, 2, 128, 10);
        let after = t.evaluate(&m, &cat_test).log_loss;
        assert!(
            after < before + 0.02,
            "fine-tuning should not hurt the target category: {before:.4} -> {after:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_expert_index_panics() {
        let (_d, m) = setup();
        let _ = FineTuner::for_experts(&m, &[99], 1e-3);
    }

    #[test]
    fn is_trainable_prefix_logic() {
        let (_d, m) = setup();
        let tuner = FineTuner::for_experts(&m, &[2, 4], 1e-3);
        assert!(tuner.is_trainable("expert2.l0.w"));
        assert!(tuner.is_trainable("expert4.l1.b"));
        assert!(!tuner.is_trainable("expert3.l0.w"));
        assert!(!tuner.is_trainable("gate.inference.w"));
        assert!(!tuner.is_trainable("emb.sc.table"));
    }
}
