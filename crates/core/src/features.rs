//! The shared feature encoder (paper Eq. 2): sparse feature embeddings
//! concatenated with normalised numeric features.

use amoe_autograd::{Tape, Var};
use amoe_dataset::{Batch, DatasetMeta};
use amoe_nn::{Bound, Embedding, ParamSet};
use amoe_tensor::{Matrix, Rng};

use crate::config::{GateInput, MoeConfig};

/// Embedding tables for every sparse feature plus assembly of the input
/// vector `X` and the gate inputs `x_sc` / `x_tc`.
///
/// The sub-category table is shared between the main input and the
/// inference gate, exactly as in the paper ("`x_sc ∈ X` is \[the\] SC
/// embedding vector, a part of \[the\] input vector").
pub struct FeatureEncoder {
    sc: Embedding,
    tc: Embedding,
    brand: Embedding,
    shop: Embedding,
    user_segment: Embedding,
    price_bucket: Embedding,
    /// Only instantiated for the `QueryTcSc` gate ablation.
    query: Option<Embedding>,
    n_numeric: usize,
}

impl FeatureEncoder {
    /// Registers all embedding tables on `params`.
    #[must_use]
    pub fn new(
        params: &mut ParamSet,
        meta: &DatasetMeta,
        config: &MoeConfig,
        rng: &mut Rng,
    ) -> Self {
        let d = config.emb_dim;
        let query = matches!(config.gate_input, GateInput::QueryTcSc)
            .then(|| Embedding::new(params, "emb.query", meta.query_vocab, d, rng));
        FeatureEncoder {
            sc: Embedding::new(params, "emb.sc", meta.sc_vocab, d, rng),
            tc: Embedding::new(params, "emb.tc", meta.tc_vocab, d, rng),
            brand: Embedding::new(params, "emb.brand", meta.brand_vocab, d, rng),
            shop: Embedding::new(params, "emb.shop", meta.shop_vocab, d, rng),
            user_segment: Embedding::new(
                params,
                "emb.user_segment",
                meta.user_segment_vocab,
                d,
                rng,
            ),
            price_bucket: Embedding::new(
                params,
                "emb.price_bucket",
                meta.price_bucket_vocab,
                d,
                rng,
            ),
            query,
            n_numeric: meta.n_numeric,
        }
    }

    /// Builds the model input `X` (Eq. 2) for a batch on the tape:
    /// `[x_sc, x_brand, x_shop, x_user, x_price, numeric]`.
    #[must_use]
    pub fn input<'t>(&self, tape: &'t Tape, bound: &Bound<'t>, batch: &Batch) -> Var<'t> {
        let numeric = tape.leaf(batch.numeric.clone()).detach();
        Var::concat_cols(&[
            self.sc.forward(bound, &batch.sc),
            self.brand.forward(bound, &batch.brand),
            self.shop.forward(bound, &batch.shop),
            self.user_segment.forward(bound, &batch.user_segment),
            self.price_bucket.forward(bound, &batch.price_bucket),
            numeric,
        ])
    }

    /// Tape-free input assembly for serving.
    #[must_use]
    pub fn input_infer(&self, params: &ParamSet, batch: &Batch) -> Matrix {
        Matrix::hcat(&[
            &self.sc.infer(params, &batch.sc),
            &self.brand.infer(params, &batch.brand),
            &self.shop.infer(params, &batch.shop),
            &self.user_segment.infer(params, &batch.user_segment),
            &self.price_bucket.infer(params, &batch.price_bucket),
            &batch.numeric,
        ])
    }

    /// Sub-category embedding rows (the inference gate's default input).
    #[must_use]
    pub fn sc_embedding<'t>(&self, bound: &Bound<'t>, batch: &Batch) -> Var<'t> {
        self.sc.forward(bound, &batch.sc)
    }

    /// Tape-free sub-category embedding for serving.
    #[must_use]
    pub fn sc_embedding_infer(&self, params: &ParamSet, batch: &Batch) -> Matrix {
        self.sc.infer(params, &batch.sc)
    }

    /// Top-category embedding rows (the constraint gate's input).
    #[must_use]
    pub fn tc_embedding<'t>(&self, bound: &Bound<'t>, batch: &Batch) -> Var<'t> {
        self.tc.forward(bound, &batch.tc)
    }

    /// The inference-gate input under a [`GateInput`] ablation setting.
    #[must_use]
    pub fn gate_input<'t>(
        &self,
        tape: &'t Tape,
        bound: &Bound<'t>,
        batch: &Batch,
        which: GateInput,
    ) -> Var<'t> {
        match which {
            GateInput::Sc => self.sc_embedding(bound, batch),
            GateInput::TcSc => Var::concat_cols(&[
                self.tc_embedding(bound, batch),
                self.sc_embedding(bound, batch),
            ]),
            GateInput::QueryTcSc => {
                let q = self
                    .query
                    .as_ref()
                    .expect("FeatureEncoder: query embedding not built for this config")
                    .forward(bound, &batch.query);
                Var::concat_cols(&[
                    q,
                    self.tc_embedding(bound, batch),
                    self.sc_embedding(bound, batch),
                ])
            }
            GateInput::UserTcSc => Var::concat_cols(&[
                self.user_segment.forward(bound, &batch.user_segment),
                self.tc_embedding(bound, batch),
                self.sc_embedding(bound, batch),
            ]),
            GateInput::All => Var::concat_cols(&[
                self.input(tape, bound, batch),
                self.tc_embedding(bound, batch),
            ]),
        }
    }

    /// Tape-free inference-gate input under a [`GateInput`] setting,
    /// column-for-column identical to [`FeatureEncoder::gate_input`]
    /// evaluated on the same parameters. This is what lets the serving
    /// path score every gate-input ablation, not just `Sc`.
    #[must_use]
    pub fn gate_input_infer(&self, params: &ParamSet, batch: &Batch, which: GateInput) -> Matrix {
        match which {
            GateInput::Sc => self.sc.infer(params, &batch.sc),
            GateInput::TcSc => Matrix::hcat(&[
                &self.tc.infer(params, &batch.tc),
                &self.sc.infer(params, &batch.sc),
            ]),
            GateInput::QueryTcSc => {
                let q = self
                    .query
                    .as_ref()
                    .expect("FeatureEncoder: query embedding not built for this config")
                    .infer(params, &batch.query);
                Matrix::hcat(&[
                    &q,
                    &self.tc.infer(params, &batch.tc),
                    &self.sc.infer(params, &batch.sc),
                ])
            }
            GateInput::UserTcSc => Matrix::hcat(&[
                &self.user_segment.infer(params, &batch.user_segment),
                &self.tc.infer(params, &batch.tc),
                &self.sc.infer(params, &batch.sc),
            ]),
            GateInput::All => Matrix::hcat(&[
                &self.input_infer(params, batch),
                &self.tc.infer(params, &batch.tc),
            ]),
        }
    }

    /// Number of numeric features.
    #[must_use]
    pub fn n_numeric(&self) -> usize {
        self.n_numeric
    }

    /// Every parameter handle the encoder owns (all embedding tables).
    /// Used to bind the shared-prefix tape of the split-graph training
    /// path to exactly the encoder's weights.
    #[must_use]
    pub fn param_ids(&self) -> Vec<amoe_nn::ParamId> {
        let mut ids = vec![
            self.sc.table(),
            self.tc.table(),
            self.brand.table(),
            self.shop.table(),
            self.user_segment.table(),
            self.price_bucket.table(),
        ];
        if let Some(q) = &self.query {
            ids.push(q.table());
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_dataset::{generate, GeneratorConfig};
    use amoe_tensor::assert_close;

    fn setup() -> (amoe_dataset::Dataset, MoeConfig) {
        (generate(&GeneratorConfig::tiny(1)), MoeConfig::default())
    }

    #[test]
    fn input_shape_matches_config() {
        let (d, cfg) = setup();
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(1);
        let enc = FeatureEncoder::new(&mut ps, &d.meta, &cfg, &mut rng);
        let batch = Batch::from_split(&d.train, &[0, 1, 2]);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let x = enc.input(&tape, &bound, &batch);
        assert_eq!(x.shape(), (3, cfg.input_dim(&d.meta)));
    }

    #[test]
    fn infer_matches_tape() {
        let (d, cfg) = setup();
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(2);
        let enc = FeatureEncoder::new(&mut ps, &d.meta, &cfg, &mut rng);
        let batch = Batch::from_split(&d.train, &[3, 7]);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let x_tape = enc.input(&tape, &bound, &batch).value();
        let x_inf = enc.input_infer(&ps, &batch);
        assert_close(&x_tape, &x_inf, 1e-6, 1e-7);
    }

    #[test]
    fn gate_input_widths() {
        let (d, _) = setup();
        for (which, factor) in [
            (GateInput::Sc, 1usize),
            (GateInput::TcSc, 2),
            (GateInput::QueryTcSc, 3),
            (GateInput::UserTcSc, 3),
        ] {
            let cfg = MoeConfig {
                gate_input: which,
                ..Default::default()
            };
            let mut ps = ParamSet::new();
            let mut rng = Rng::seed_from(3);
            let enc = FeatureEncoder::new(&mut ps, &d.meta, &cfg, &mut rng);
            let batch = Batch::from_split(&d.train, &[0, 1]);
            let tape = Tape::new();
            let bound = ps.bind(&tape);
            let g = enc.gate_input(&tape, &bound, &batch, which);
            assert_eq!(g.shape(), (2, factor * cfg.emb_dim), "{which:?}");
        }
    }

    #[test]
    fn all_gate_input_includes_everything() {
        let (d, _) = setup();
        let cfg = MoeConfig {
            gate_input: GateInput::All,
            ..Default::default()
        };
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(4);
        let enc = FeatureEncoder::new(&mut ps, &d.meta, &cfg, &mut rng);
        let batch = Batch::from_split(&d.train, &[0]);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let g = enc.gate_input(&tape, &bound, &batch, GateInput::All);
        assert_eq!(g.shape().1, cfg.gate_input_dim(&d.meta));
    }

    #[test]
    fn gate_input_infer_matches_tape_for_every_variant() {
        let (d, _) = setup();
        for which in [
            GateInput::Sc,
            GateInput::TcSc,
            GateInput::QueryTcSc,
            GateInput::UserTcSc,
            GateInput::All,
        ] {
            let cfg = MoeConfig {
                gate_input: which,
                ..Default::default()
            };
            let mut ps = ParamSet::new();
            let mut rng = Rng::seed_from(6);
            let enc = FeatureEncoder::new(&mut ps, &d.meta, &cfg, &mut rng);
            let batch = Batch::from_split(&d.train, &[2, 5, 9]);
            let tape = Tape::new();
            let bound = ps.bind(&tape);
            let on_tape = enc.gate_input(&tape, &bound, &batch, which).value();
            let inferred = enc.gate_input_infer(&ps, &batch, which);
            assert_close(&on_tape, &inferred, 1e-6, 1e-7);
        }
    }

    #[test]
    fn numeric_features_are_detached() {
        // Gradients must not flow into the raw numeric leaf (it is data,
        // not a parameter); verify backward succeeds and embeddings get
        // gradients while the batch numeric leaf does not explode.
        let (d, cfg) = setup();
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(5);
        let enc = FeatureEncoder::new(&mut ps, &d.meta, &cfg, &mut rng);
        let batch = Batch::from_split(&d.train, &[0, 1]);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let x = enc.input(&tape, &bound, &batch);
        let loss = x.square().sum_all();
        let grads = tape.backward(loss);
        ps.collect_grads(&bound, &grads);
        let sc_grad = ps.grad(ps.find("emb.sc.table").unwrap());
        assert!(sc_grad.frob_norm() > 0.0);
    }
}
