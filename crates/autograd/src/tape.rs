//! The Wengert-list tape: node storage, ops and the backward sweep.

use std::cell::RefCell;

use amoe_tensor::{matmul, ops, reduce, Matrix};

use crate::Var;

/// How a node was produced; parents are node ids on the same tape.
///
/// Constant payloads (`Matrix` values stored inside variants) are *not*
/// differentiated through — they are per-batch data such as labels,
/// gating masks or sampled noise.
#[derive(Clone, Debug)]
pub enum Op {
    /// A leaf (input or parameter). Gradients accumulate here.
    Leaf,
    /// `a + b`, same shapes.
    Add(usize, usize),
    /// `a - b`, same shapes.
    Sub(usize, usize),
    /// Element-wise `a * b`, same shapes.
    Mul(usize, usize),
    /// Element-wise `a / b`, same shapes.
    Div(usize, usize),
    /// `-a`.
    Neg(usize),
    /// `a * c` for scalar constant `c`.
    Scale(usize, f32),
    /// `a + c` for scalar constant `c`.
    AddScalar(usize, f32),
    /// Matrix product `a · b`.
    MatMul(usize, usize),
    /// `[m,n] + [1,n]` row broadcast (bias add).
    AddRowBroadcast(usize, usize),
    /// `[m,n] * [m,1]` column broadcast (per-row scaling).
    MulColBroadcast(usize, usize),
    /// Element-wise max(x, 0).
    Relu(usize),
    /// Element-wise logistic sigmoid.
    Sigmoid(usize),
    /// Element-wise tanh.
    Tanh(usize),
    /// Element-wise exp.
    Exp(usize),
    /// Element-wise natural log.
    Ln(usize),
    /// Element-wise softplus `ln(1+e^x)`.
    Softplus(usize),
    /// Row-wise softmax (full support).
    SoftmaxRows(usize),
    /// Row-wise softmax over entries where `mask != 0`; masked entries get
    /// probability 0 and propagate no gradient. The mask is a constant.
    MaskedSoftmaxRows {
        /// Parent node holding the logits.
        input: usize,
        /// Constant 0/1 mask (zero entries are excluded from the support).
        mask: Matrix,
    },
    /// Row sums `[m,n] -> [m,1]`.
    RowSum(usize),
    /// Column sums `[m,n] -> [1,n]`.
    ColSum(usize),
    /// Sum of all entries `-> [1,1]`.
    SumAll(usize),
    /// Mean of all entries `-> [1,1]`.
    MeanAll(usize),
    /// Row gather from an embedding table: `out[i] = table[indices[i]]`.
    /// Backward scatter-adds into the table gradient.
    EmbedLookup {
        /// Parent node holding the embedding table.
        table: usize,
        /// Row index per output row (repeats allowed).
        indices: Vec<usize>,
    },
    /// Horizontal concatenation of parents (all same row count).
    ConcatCols(Vec<usize>),
    /// Element-wise product with a constant matrix (e.g. a 0/1 mask or
    /// sampled gating noise). No gradient flows into the constant.
    MulConst {
        /// Parent node.
        input: usize,
        /// The constant factor.
        konst: Matrix,
    },
    /// Element-wise sum with a constant matrix.
    AddConst {
        /// Parent node.
        input: usize,
        /// The constant addend.
        konst: Matrix,
    },
    /// Identity forward, zero backward (stop-gradient).
    Detach(usize),
    /// Fused, numerically stable binary cross-entropy with logits.
    /// Forward yields the per-element loss; `targets` is a constant.
    BceWithLogits {
        /// Parent node holding the logits.
        logits: usize,
        /// Constant 0/1 targets.
        targets: Matrix,
    },
    /// Columns `[start, end)` of the parent.
    SliceCols {
        /// Parent node.
        input: usize,
        /// First column (inclusive).
        start: usize,
        /// Last column (exclusive).
        end: usize,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Tape::backward`], indexed by node id.
///
/// Nodes that the loss does not depend on have `None` gradients.
pub struct Grads {
    grads: Vec<Option<Matrix>>,
}

impl Grads {
    /// Gradient of the loss w.r.t. the node behind `var`, if any.
    #[must_use]
    pub fn get(&self, var: Var<'_>) -> Option<&Matrix> {
        self.grads.get(var.id()).and_then(|g| g.as_ref())
    }

    /// Like [`Grads::get`] but returns a zero matrix of the given shape
    /// when the node received no gradient.
    #[must_use]
    pub fn get_or_zeros(&self, var: Var<'_>, rows: usize, cols: usize) -> Matrix {
        self.get(var)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(rows, cols))
    }
}

/// An append-only record of the forward computation.
///
/// A tape is built per training step, consumed by [`Tape::backward`], and
/// dropped; parameters live outside the tape (see `amoe-nn`) and are
/// re-inserted as leaves each step.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Creates an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Inserts a leaf holding `value` and returns its handle. Leaves are
    /// the only nodes whose gradients callers typically read back.
    pub fn leaf(&self, value: Matrix) -> Var<'_> {
        self.push(value, Op::Leaf)
    }

    pub(crate) fn push(&self, value: Matrix, op: Op) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node { value, op });
        Var::new(self, id)
    }

    /// Clone of the forward value of a node.
    #[must_use]
    pub fn value(&self, id: usize) -> Matrix {
        self.nodes.borrow()[id].value.clone()
    }

    /// Re-materialises the [`Var`] handle for node `id`.
    ///
    /// `Var` borrows its tape and is therefore not `Send`; code that
    /// moves a tape across threads (the parallel per-expert training
    /// path) keeps raw ids instead and rebuilds handles with this.
    ///
    /// # Panics
    /// Panics if `id` is not a node on this tape.
    #[must_use]
    pub fn var(&self, id: usize) -> Var<'_> {
        assert!(
            id < self.nodes.borrow().len(),
            "Tape::var: id {id} out of range for tape of {} nodes",
            self.nodes.borrow().len()
        );
        Var::new(self, id)
    }

    /// Shape of the forward value of a node without cloning it.
    #[must_use]
    pub fn shape(&self, id: usize) -> (usize, usize) {
        self.nodes.borrow()[id].value.shape()
    }

    /// Runs the backward sweep from `loss`, which must be a `1x1` scalar,
    /// seeding `∂loss/∂loss = 1`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1x1`.
    #[must_use]
    pub fn backward(&self, loss: Var<'_>) -> Grads {
        self.backward_seeded(loss, Matrix::scalar(1.0))
    }

    /// Backward sweep with an explicit seed gradient (same shape as the
    /// value of `output`). Useful for vector-Jacobian products in tests.
    #[must_use]
    pub fn backward_seeded(&self, output: Var<'_>, seed: Matrix) -> Grads {
        self.backward_multi(vec![(output, seed)])
    }

    /// Backward sweep seeded at several nodes at once — the
    /// vector-Jacobian product `Σ_i seedᵢ · J(outputᵢ)`.
    ///
    /// This is how the split-graph training path back-propagates
    /// through a shared prefix tape: the downstream graphs (per-expert
    /// towers, the gate/loss tape) each hand back a cotangent for the
    /// boundary node they consumed, and one sweep pushes all of them
    /// through the shared nodes. Seeds for the same node accumulate.
    ///
    /// # Panics
    /// Panics if `seeds` is empty or any seed's shape does not match
    /// its node's value shape.
    #[must_use]
    pub fn backward_multi(&self, seeds: Vec<(Var<'_>, Matrix)>) -> Grads {
        assert!(!seeds.is_empty(), "backward_multi: no seeds");
        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Matrix>> = vec![None; nodes.len()];
        let mut start = 0;
        for (output, seed) in seeds {
            assert_eq!(
                nodes[output.id()].value.shape(),
                seed.shape(),
                "backward: seed shape {:?} does not match output shape {:?}",
                seed.shape(),
                nodes[output.id()].value.shape()
            );
            start = start.max(output.id());
            Self::accumulate(&mut grads[output.id()], seed);
        }

        for id in (0..=start).rev() {
            let Some(g) = grads[id].take() else {
                continue;
            };
            // Re-store: callers may want to read interior grads too.
            let node = &nodes[id];
            Self::push_to_parents(&nodes, &mut grads, node, &g);
            grads[id] = Some(g);
        }
        Grads { grads }
    }

    fn accumulate(slot: &mut Option<Matrix>, delta: Matrix) {
        match slot {
            Some(g) => ops::add_assign(g, &delta),
            None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn push_to_parents(nodes: &[Node], grads: &mut [Option<Matrix>], node: &Node, g: &Matrix) {
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                Self::accumulate(&mut grads[*a], g.clone());
                Self::accumulate(&mut grads[*b], g.clone());
            }
            Op::Sub(a, b) => {
                Self::accumulate(&mut grads[*a], g.clone());
                Self::accumulate(&mut grads[*b], ops::scale(g, -1.0));
            }
            Op::Mul(a, b) => {
                Self::accumulate(&mut grads[*a], ops::mul(g, &nodes[*b].value));
                Self::accumulate(&mut grads[*b], ops::mul(g, &nodes[*a].value));
            }
            Op::Div(a, b) => {
                let bv = &nodes[*b].value;
                Self::accumulate(&mut grads[*a], ops::div(g, bv));
                // d/db (a/b) = -a / b^2
                let mut db = ops::mul(g, &nodes[*a].value);
                db = ops::div(&db, bv);
                db = ops::div(&db, bv);
                Self::accumulate(&mut grads[*b], ops::scale(&db, -1.0));
            }
            Op::Neg(a) => Self::accumulate(&mut grads[*a], ops::scale(g, -1.0)),
            Op::Scale(a, c) => Self::accumulate(&mut grads[*a], ops::scale(g, *c)),
            Op::AddScalar(a, _) => Self::accumulate(&mut grads[*a], g.clone()),
            Op::MatMul(a, b) => {
                Self::accumulate(&mut grads[*a], matmul::matmul_nt(g, &nodes[*b].value));
                Self::accumulate(&mut grads[*b], matmul::matmul_tn(&nodes[*a].value, g));
            }
            Op::AddRowBroadcast(a, row) => {
                Self::accumulate(&mut grads[*a], g.clone());
                Self::accumulate(&mut grads[*row], reduce::col_sum(g));
            }
            Op::MulColBroadcast(a, col) => {
                let colv = &nodes[*col].value;
                Self::accumulate(&mut grads[*a], ops::mul_col_broadcast(g, colv));
                let prod = ops::mul(g, &nodes[*a].value);
                Self::accumulate(&mut grads[*col], reduce::row_sum(&prod));
            }
            Op::Relu(a) => {
                let mask = ops::map(&nodes[*a].value, |v| if v > 0.0 { 1.0 } else { 0.0 });
                Self::accumulate(&mut grads[*a], ops::mul(g, &mask));
            }
            Op::Sigmoid(a) => {
                // value = σ(x); dσ = σ(1-σ)
                let d = ops::map(&node.value, |s| s * (1.0 - s));
                Self::accumulate(&mut grads[*a], ops::mul(g, &d));
            }
            Op::Tanh(a) => {
                let d = ops::map(&node.value, |t| 1.0 - t * t);
                Self::accumulate(&mut grads[*a], ops::mul(g, &d));
            }
            Op::Exp(a) => {
                Self::accumulate(&mut grads[*a], ops::mul(g, &node.value));
            }
            Op::Ln(a) => {
                Self::accumulate(&mut grads[*a], ops::div(g, &nodes[*a].value));
            }
            Op::Softplus(a) => {
                let d = ops::sigmoid(&nodes[*a].value);
                Self::accumulate(&mut grads[*a], ops::mul(g, &d));
            }
            Op::SoftmaxRows(a) | Op::MaskedSoftmaxRows { input: a, .. } => {
                // dx_i = s_i * (g_i - Σ_j g_j s_j); masked entries have
                // s_i = 0 so they receive no gradient automatically.
                let s = &node.value;
                let mut dx = Matrix::zeros(s.rows(), s.cols());
                for r in 0..s.rows() {
                    let srow = s.row(r);
                    let grow = g.row(r);
                    let dot: f32 = srow.iter().zip(grow).map(|(si, gi)| si * gi).sum();
                    for ((d, &si), &gi) in dx.row_mut(r).iter_mut().zip(srow).zip(grow) {
                        *d = si * (gi - dot);
                    }
                }
                Self::accumulate(&mut grads[*a], dx);
            }
            Op::RowSum(a) => {
                let (rows, cols) = nodes[*a].value.shape();
                let mut dx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    let gv = g[(r, 0)];
                    dx.row_mut(r).iter_mut().for_each(|v| *v = gv);
                }
                Self::accumulate(&mut grads[*a], dx);
            }
            Op::ColSum(a) => {
                let (rows, cols) = nodes[*a].value.shape();
                let mut dx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    dx.row_mut(r).copy_from_slice(g.row(0));
                }
                Self::accumulate(&mut grads[*a], dx);
            }
            Op::SumAll(a) => {
                let (rows, cols) = nodes[*a].value.shape();
                Self::accumulate(&mut grads[*a], Matrix::filled(rows, cols, g[(0, 0)]));
            }
            Op::MeanAll(a) => {
                let (rows, cols) = nodes[*a].value.shape();
                let v = g[(0, 0)] / (rows * cols) as f32;
                Self::accumulate(&mut grads[*a], Matrix::filled(rows, cols, v));
            }
            Op::EmbedLookup { table, indices } => {
                let (rows, cols) = nodes[*table].value.shape();
                let mut dt = Matrix::zeros(rows, cols);
                for (out_row, &idx) in indices.iter().enumerate() {
                    let src = g.row(out_row);
                    let dst = dt.row_mut(idx);
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
                Self::accumulate(&mut grads[*table], dt);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let w = nodes[p].value.cols();
                    Self::accumulate(&mut grads[p], g.slice_cols(off, off + w));
                    off += w;
                }
            }
            Op::MulConst { input, konst } => {
                Self::accumulate(&mut grads[*input], ops::mul(g, konst));
            }
            Op::AddConst { input, .. } => {
                Self::accumulate(&mut grads[*input], g.clone());
            }
            Op::Detach(_) => {}
            Op::BceWithLogits { logits, targets } => {
                // d/dx [max(x,0) - x y + ln(1+e^{-|x|})] = σ(x) - y
                let d = ops::zip_map(&nodes[*logits].value, targets, |x, y| {
                    ops::sigmoid_scalar(x) - y
                });
                Self::accumulate(&mut grads[*logits], ops::mul(g, &d));
            }
            Op::SliceCols { input, start, end } => {
                let (rows, cols) = nodes[*input].value.shape();
                let mut dx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    dx.row_mut(r)[*start..*end].copy_from_slice(g.row(r));
                }
                Self::accumulate(&mut grads[*input], dx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_value_roundtrip() {
        let tape = Tape::new();
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let v = tape.leaf(m.clone());
        assert_eq!(v.value(), m);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn backward_of_identity_sum() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let s = x.sum_all();
        assert_eq!(s.value()[(0, 0)], 10.0);
        let grads = tape.backward(s);
        assert_eq!(grads.get(x).unwrap(), &Matrix::ones(2, 2));
    }

    #[test]
    fn grad_accumulates_over_fanout() {
        // loss = sum(x) + sum(x) => dx = 2
        let tape = Tape::new();
        let x = tape.leaf(Matrix::ones(1, 3));
        let loss = x.sum_all() + x.sum_all();
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap(), &Matrix::filled(1, 3, 2.0));
    }

    #[test]
    fn detach_blocks_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::ones(1, 2));
        let loss = x.detach().sum_all();
        let grads = tape.backward(loss);
        assert!(grads.get(x).is_none());
    }

    #[test]
    #[should_panic(expected = "seed shape")]
    fn backward_requires_scalar_loss() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 2));
        let _ = tape.backward(x);
    }

    #[test]
    fn var_rebuilds_handle() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 3));
        let again = tape.var(x.id());
        assert_eq!(again.id(), x.id());
        assert_eq!(again.value(), x.value());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_rejects_unknown_id() {
        let tape = Tape::new();
        let _ = tape.var(3);
    }

    #[test]
    fn backward_multi_matches_sum_of_sweeps() {
        // loss1 = sum(x*x), loss2 = sum(x) seeded at distinct nodes
        // must equal backward(loss1 + loss2).
        fn build(tape: &Tape) -> (Var<'_>, Var<'_>, Var<'_>) {
            let x = tape.leaf(Matrix::from_rows(&[&[1.0, -2.0, 3.0]]));
            (x, (x * x).sum_all(), x.sum_all())
        }
        let t1 = Tape::new();
        let (x1, a1, b1) = build(&t1);
        let combined = t1.backward(a1 + b1);

        let t2 = Tape::new();
        let (x2, a2, b2) = build(&t2);
        let multi = t2.backward_multi(vec![(a2, Matrix::scalar(1.0)), (b2, Matrix::scalar(1.0))]);
        assert_eq!(combined.get(x1).unwrap(), multi.get(x2).unwrap());
    }

    #[test]
    fn backward_multi_accumulates_repeated_node() {
        // Seeding the same node twice must behave like one summed seed.
        let tape = Tape::new();
        let x = tape.leaf(Matrix::ones(1, 2));
        let s = x.sum_all();
        let g = tape.backward_multi(vec![(s, Matrix::scalar(1.0)), (s, Matrix::scalar(2.0))]);
        assert_eq!(g.get(x).unwrap(), &Matrix::filled(1, 2, 3.0));
    }

    #[test]
    fn unused_nodes_have_no_grad() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::ones(1, 2));
        let y = tape.leaf(Matrix::ones(1, 2));
        let loss = x.sum_all();
        let grads = tape.backward(loss);
        assert!(grads.get(x).is_some());
        assert!(grads.get(y).is_none());
    }
}
