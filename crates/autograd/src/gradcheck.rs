//! Finite-difference gradient checking.
//!
//! [`check_gradients`] rebuilds the computation for every perturbed input
//! element, so it is O(elements × graph); use small shapes. It is the
//! correctness oracle for every op in this crate and for the full combined
//! loss in `amoe-core`.

use amoe_tensor::Matrix;

use crate::{Tape, Var};

/// Result of a single gradient comparison.
#[derive(Debug, Clone)]
pub struct GradCheckFailure {
    /// Which input matrix disagreed.
    pub input: usize,
    /// Flat element index within that input.
    pub element: usize,
    /// Gradient from the backward pass.
    pub analytic: f32,
    /// Central finite-difference estimate.
    pub numeric: f32,
}

/// Compares backward-pass gradients of `f` against central finite
/// differences at the point `inputs`.
///
/// `f` receives a fresh tape and one leaf per input and must return a
/// scalar (`1x1`) loss variable. Returns all failures where
/// `|analytic - numeric| > tol * max(1, |analytic|, |numeric|)`.
pub fn check_gradients<F>(f: F, inputs: &[Matrix], eps: f32, tol: f32) -> Vec<GradCheckFailure>
where
    F: Fn(&Tape, &[Var<'_>]) -> f32to_loss::LossId,
{
    // Evaluate analytic gradients once.
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = f(&tape, &vars).resolve(&tape);
    let grads = tape.backward(loss);
    let analytic: Vec<Matrix> = vars
        .iter()
        .map(|v| {
            let (r, c) = v.shape();
            grads.get_or_zeros(*v, r, c)
        })
        .collect();

    let mut failures = Vec::new();
    for (ii, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let numeric = {
                let mut plus = inputs.to_vec();
                plus[ii].as_mut_slice()[e] += eps;
                let lp = eval_loss(&f, &plus);
                let mut minus = inputs.to_vec();
                minus[ii].as_mut_slice()[e] -= eps;
                let lm = eval_loss(&f, &minus);
                (lp - lm) / (2.0 * eps)
            };
            let a = analytic[ii].as_slice()[e];
            let scale = 1.0f32.max(a.abs()).max(numeric.abs());
            if (a - numeric).abs() > tol * scale {
                failures.push(GradCheckFailure {
                    input: ii,
                    element: e,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    failures
}

fn eval_loss<F>(f: &F, inputs: &[Matrix]) -> f32
where
    F: Fn(&Tape, &[Var<'_>]) -> f32to_loss::LossId,
{
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = f(&tape, &vars).resolve(&tape);
    loss.value()[(0, 0)]
}

/// Helper so the builder closure can return a loss without fighting the
/// borrow checker over the tape lifetime: it returns the node id, which
/// the checker resolves against its own tape.
pub mod f32to_loss {
    use crate::{Tape, Var};

    /// An opaque loss handle: the node id of a scalar on the caller's tape.
    #[derive(Clone, Copy, Debug)]
    pub struct LossId(usize);

    impl LossId {
        pub(crate) fn resolve(self, tape: &Tape) -> Var<'_> {
            Var::new(tape, self.0)
        }
    }

    impl<'t> From<Var<'t>> for LossId {
        fn from(v: Var<'t>) -> Self {
            assert_eq!(
                v.shape(),
                (1, 1),
                "gradient check: loss must be a 1x1 scalar, got {:?}",
                v.shape()
            );
            LossId(v.id())
        }
    }
}

/// Panics with a readable report if any gradient disagrees.
pub fn assert_gradients<F>(f: F, inputs: &[Matrix], eps: f32, tol: f32)
where
    F: Fn(&Tape, &[Var<'_>]) -> f32to_loss::LossId,
{
    let failures = check_gradients(f, inputs, eps, tol);
    assert!(
        failures.is_empty(),
        "gradient check failed at {} element(s); first: {:?}",
        failures.len(),
        failures.first()
    );
}
