//! [`Var`]: a copyable handle to a tape node, with operator overloading.

use std::ops::{Add, Div, Mul, Neg, Sub};

use amoe_tensor::{matmul, ops, reduce, topk, Matrix};

use crate::tape::{Op, Tape};

/// A handle to a node on a [`Tape`].
///
/// `Var` is `Copy` (a tape reference plus an index), so expressions like
/// `(a + b) * a` work without explicit clones. All operations panic on
/// shape mismatch with a message naming the operation, mirroring the
/// kernel layer.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl<'t> Var<'t> {
    pub(crate) fn new(tape: &'t Tape, id: usize) -> Self {
        Var { tape, id }
    }

    /// The node id on the tape.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The tape this variable lives on.
    #[must_use]
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Clone of the forward value.
    #[must_use]
    pub fn value(&self) -> Matrix {
        self.tape.value(self.id)
    }

    /// Shape of the forward value.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.tape.shape(self.id)
    }

    fn unary(self, value: Matrix, op: Op) -> Var<'t> {
        self.tape.push(value, op)
    }

    /// Matrix product `self · rhs`.
    #[must_use]
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        let v = matmul::matmul(&self.value(), &rhs.value());
        self.unary(v, Op::MatMul(self.id, rhs.id))
    }

    /// Adds a `1 x n` bias row to every row.
    #[must_use]
    pub fn add_row(self, row: Var<'t>) -> Var<'t> {
        let v = ops::add_row_broadcast(&self.value(), &row.value());
        self.unary(v, Op::AddRowBroadcast(self.id, row.id))
    }

    /// Scales every row by the matching entry of an `m x 1` column.
    #[must_use]
    pub fn mul_col(self, col: Var<'t>) -> Var<'t> {
        let v = ops::mul_col_broadcast(&self.value(), &col.value());
        self.unary(v, Op::MulColBroadcast(self.id, col.id))
    }

    /// Element-wise ReLU.
    #[must_use]
    pub fn relu(self) -> Var<'t> {
        let v = ops::relu(&self.value());
        self.unary(v, Op::Relu(self.id))
    }

    /// Element-wise logistic sigmoid.
    #[must_use]
    pub fn sigmoid(self) -> Var<'t> {
        let v = ops::sigmoid(&self.value());
        self.unary(v, Op::Sigmoid(self.id))
    }

    /// Element-wise tanh.
    #[must_use]
    pub fn tanh(self) -> Var<'t> {
        let v = ops::map(&self.value(), f32::tanh);
        self.unary(v, Op::Tanh(self.id))
    }

    /// Element-wise exp.
    #[must_use]
    pub fn exp(self) -> Var<'t> {
        let v = ops::map(&self.value(), f32::exp);
        self.unary(v, Op::Exp(self.id))
    }

    /// Element-wise natural logarithm.
    #[must_use]
    pub fn ln(self) -> Var<'t> {
        let v = ops::map(&self.value(), f32::ln);
        self.unary(v, Op::Ln(self.id))
    }

    /// Element-wise softplus.
    #[must_use]
    pub fn softplus(self) -> Var<'t> {
        let v = ops::softplus(&self.value());
        self.unary(v, Op::Softplus(self.id))
    }

    /// Element-wise square.
    #[must_use]
    pub fn square(self) -> Var<'t> {
        self * self
    }

    /// Multiplication by a scalar constant.
    #[must_use]
    pub fn scale(self, c: f32) -> Var<'t> {
        let v = ops::scale(&self.value(), c);
        self.unary(v, Op::Scale(self.id, c))
    }

    /// Addition of a scalar constant.
    #[must_use]
    pub fn add_scalar(self, c: f32) -> Var<'t> {
        let v = ops::add_scalar(&self.value(), c);
        self.unary(v, Op::AddScalar(self.id, c))
    }

    /// Row-wise softmax over the full support.
    #[must_use]
    pub fn softmax_rows(self) -> Var<'t> {
        let v = ops::softmax_rows(&self.value());
        self.unary(v, Op::SoftmaxRows(self.id))
    }

    /// Row-wise softmax restricted to entries where `mask != 0` (Eq. 6–7:
    /// the top-K masked softmax). Masked entries get exactly zero
    /// probability and zero gradient; the mask itself is a constant.
    ///
    /// # Panics
    /// Panics if the mask shape differs or a row of the mask is all zero.
    #[must_use]
    pub fn masked_softmax_rows(self, mask: &Matrix) -> Var<'t> {
        let x = self.value();
        assert_eq!(
            x.shape(),
            mask.shape(),
            "masked_softmax_rows: mask shape {:?} vs input {:?}",
            mask.shape(),
            x.shape()
        );
        let masked = ops::zip_map(
            &x,
            mask,
            |v, m| if m != 0.0 { v } else { f32::NEG_INFINITY },
        );
        let v = ops::softmax_rows(&masked);
        self.unary(
            v,
            Op::MaskedSoftmaxRows {
                input: self.id,
                mask: mask.clone(),
            },
        )
    }

    /// Convenience: masked softmax keeping each row's top-`k` inputs.
    /// Returns the probabilities and the 0/1 mask that was applied.
    #[must_use]
    pub fn topk_softmax_rows(self, k: usize) -> (Var<'t>, Matrix) {
        let mask = topk::row_topk_mask(&self.value(), k);
        (self.masked_softmax_rows(&mask), mask)
    }

    /// Row sums `[m,n] -> [m,1]`.
    #[must_use]
    pub fn row_sum(self) -> Var<'t> {
        let v = reduce::row_sum(&self.value());
        self.unary(v, Op::RowSum(self.id))
    }

    /// Column sums `[m,n] -> [1,n]`.
    #[must_use]
    pub fn col_sum(self) -> Var<'t> {
        let v = reduce::col_sum(&self.value());
        self.unary(v, Op::ColSum(self.id))
    }

    /// Sum of all entries, producing a `1x1` scalar node.
    #[must_use]
    pub fn sum_all(self) -> Var<'t> {
        let v = Matrix::scalar(reduce::sum(&self.value()));
        self.unary(v, Op::SumAll(self.id))
    }

    /// Mean of all entries, producing a `1x1` scalar node.
    #[must_use]
    pub fn mean_all(self) -> Var<'t> {
        let v = Matrix::scalar(reduce::mean(&self.value()));
        self.unary(v, Op::MeanAll(self.id))
    }

    /// Embedding lookup: treats `self` as a table and gathers the given
    /// rows. Gradients scatter-add back into the table.
    ///
    /// # Panics
    /// Panics if any index is out of bounds or `indices` is empty.
    #[must_use]
    pub fn embed(self, indices: &[usize]) -> Var<'t> {
        let v = self.value().gather_rows(indices);
        self.unary(
            v,
            Op::EmbedLookup {
                table: self.id,
                indices: indices.to_vec(),
            },
        )
    }

    /// Horizontal concatenation of several variables (same row counts).
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts disagree.
    #[must_use]
    pub fn concat_cols(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        let values: Vec<Matrix> = parts.iter().map(Var::value).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let v = Matrix::hcat(&refs);
        parts[0]
            .tape
            .push(v, Op::ConcatCols(parts.iter().map(|p| p.id).collect()))
    }

    /// Element-wise product with a constant matrix (mask, noise, ...).
    #[must_use]
    pub fn mul_const(self, konst: &Matrix) -> Var<'t> {
        let v = ops::mul(&self.value(), konst);
        self.unary(
            v,
            Op::MulConst {
                input: self.id,
                konst: konst.clone(),
            },
        )
    }

    /// Element-wise sum with a constant matrix.
    #[must_use]
    pub fn add_const(self, konst: &Matrix) -> Var<'t> {
        let v = ops::add(&self.value(), konst);
        self.unary(
            v,
            Op::AddConst {
                input: self.id,
                konst: konst.clone(),
            },
        )
    }

    /// Identity in the forward pass, stops gradients in the backward pass.
    #[must_use]
    pub fn detach(self) -> Var<'t> {
        let v = self.value();
        self.unary(v, Op::Detach(self.id))
    }

    /// Numerically stable per-element binary cross-entropy against
    /// constant `targets`, treating `self` as logits:
    /// `max(x,0) - x·y + ln(1 + e^{-|x|})`.
    ///
    /// Returns the matrix of per-element losses (reduce with
    /// [`Var::mean_all`] for the batch loss, Eq. 13).
    #[must_use]
    pub fn bce_with_logits(self, targets: &Matrix) -> Var<'t> {
        let x = self.value();
        assert_eq!(
            x.shape(),
            targets.shape(),
            "bce_with_logits: target shape {:?} vs logits {:?}",
            targets.shape(),
            x.shape()
        );
        let v = ops::zip_map(&x, targets, |x, y| {
            x.max(0.0) - x * y + ops::softplus_scalar(-x.abs())
        });
        self.unary(
            v,
            Op::BceWithLogits {
                logits: self.id,
                targets: targets.clone(),
            },
        )
    }

    /// Columns `[start, end)` as a new node.
    #[must_use]
    pub fn slice_cols(self, start: usize, end: usize) -> Var<'t> {
        let v = self.value().slice_cols(start, end);
        self.unary(
            v,
            Op::SliceCols {
                input: self.id,
                start,
                end,
            },
        )
    }
}

impl<'t> Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        let v = ops::add(&self.value(), &rhs.value());
        self.tape.push(v, Op::Add(self.id, rhs.id))
    }
}

impl<'t> Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        let v = ops::sub(&self.value(), &rhs.value());
        self.tape.push(v, Op::Sub(self.id, rhs.id))
    }
}

impl<'t> Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        let v = ops::mul(&self.value(), &rhs.value());
        self.tape.push(v, Op::Mul(self.id, rhs.id))
    }
}

impl<'t> Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        let v = ops::div(&self.value(), &rhs.value());
        self.tape.push(v, Op::Div(self.id, rhs.id))
    }
}

impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        let v = ops::scale(&self.value(), -1.0);
        self.tape.push(v, Op::Neg(self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_tensor::assert_close;

    #[test]
    fn operator_overloads_forward() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(&[&[2.0, 3.0]]));
        let b = tape.leaf(Matrix::from_rows(&[&[4.0, 5.0]]));
        assert_eq!((a + b).value().row(0), &[6.0, 8.0]);
        assert_eq!((a - b).value().row(0), &[-2.0, -2.0]);
        assert_eq!((a * b).value().row(0), &[8.0, 15.0]);
        assert_eq!((b / a).value().row(0), &[2.0, 5.0 / 3.0]);
        assert_eq!((-a).value().row(0), &[-2.0, -3.0]);
    }

    #[test]
    fn topk_softmax_rows_masks() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 3.0, 2.0, -1.0]]));
        let (p, mask) = x.topk_softmax_rows(2);
        let pv = p.value();
        assert_eq!(pv[(0, 0)], 0.0);
        assert_eq!(pv[(0, 3)], 0.0);
        assert!((pv.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(pv[(0, 1)] > pv[(0, 2)]);
        assert_eq!(mask[(0, 1)], 1.0);
        assert_eq!(mask[(0, 2)], 1.0);
    }

    #[test]
    fn bce_matches_naive_formula() {
        let tape = Tape::new();
        let logits = Matrix::from_rows(&[&[0.3, -1.2, 4.0]]);
        let targets = Matrix::from_rows(&[&[1.0, 0.0, 1.0]]);
        let x = tape.leaf(logits.clone());
        let loss = x.bce_with_logits(&targets);
        let lv = loss.value();
        for i in 0..3 {
            let p = ops::sigmoid_scalar(logits[(0, i)]);
            let y = targets[(0, i)];
            let naive = -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            assert!(
                (lv[(0, i)] - naive).abs() < 1e-5,
                "elem {i}: {} vs {naive}",
                lv[(0, i)]
            );
        }
    }

    #[test]
    fn embed_forward_gathers() {
        let tape = Tape::new();
        let table = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let e = table.embed(&[2, 2, 0]);
        assert_eq!(e.value().row(0), &[5.0, 6.0]);
        assert_eq!(e.value().row(2), &[1.0, 2.0]);
    }

    #[test]
    fn embed_backward_scatter_adds() {
        let tape = Tape::new();
        let table = tape.leaf(Matrix::zeros(3, 2));
        let loss = table.embed(&[1, 1, 0]).sum_all();
        let grads = tape.backward(loss);
        let gt = grads.get(table).unwrap();
        assert_close(
            gt,
            &Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[0.0, 0.0]]),
            1e-6,
            1e-7,
        );
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let b = tape.leaf(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let c = Var::concat_cols(&[a, b]);
        assert_eq!(c.value().row(1), &[2.0, 5.0, 6.0]);
        let s = c.slice_cols(1, 3);
        assert_eq!(s.value(), b.value());
    }
}
