#![warn(missing_docs)]

//! Reverse-mode automatic differentiation over [`amoe_tensor::Matrix`].
//!
//! The paper's training objective (Eq. 14) needs non-standard gradient
//! routing that general frameworks make awkward and from-scratch manual
//! backprop makes error-prone:
//!
//! * the Hierarchical Soft Constraint must reach both gate networks but
//!   **not** the expert towers (Eq. 15–16) — handled naturally because HSC
//!   is a function of gate outputs only, plus [`Var::detach`] for explicit
//!   stop-gradients;
//! * the adversarial loss enters the objective with a **negative** sign and
//!   flows into two disjoint, per-example-random subsets of experts —
//!   handled by constant 0/1 masks (non-differentiable by construction);
//! * noisy top-K gating (Eq. 6) requires a masked softmax whose masked
//!   coordinates receive exactly zero probability and zero gradient.
//!
//! The design is a classic Wengert list: a [`Tape`] owns an append-only
//! vector of nodes, each holding its forward value and an [`Op`] describing
//! how to push gradients to its parents. [`Var`] is a `Copy` handle
//! (tape reference + node id) with operator overloading, so model code
//! reads like the maths in the paper.
//!
//! Every op's backward pass is verified against central finite differences
//! in this crate's tests (see [`gradcheck`]), and the full combined MoE
//! loss is gradient-checked again in `amoe-core`.
//!
//! # Example
//!
//! ```
//! use amoe_autograd::Tape;
//! use amoe_tensor::Matrix;
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = tape.leaf(Matrix::from_rows(&[&[0.5], &[-0.25]]));
//! let y = x.matmul(w).sigmoid().sum_all();
//! let grads = tape.backward(y);
//! assert!(grads.get(w).is_some());
//! ```

pub mod gradcheck;
mod tape;
mod var;

pub use tape::{Grads, Op, Tape};
pub use var::Var;
