//! Gradient-checks randomly composed op chains — catches backward-pass
//! bugs that only appear in specific op *compositions* rather than in
//! any single op.

use amoe_autograd::gradcheck::assert_gradients;
use amoe_autograd::Var;
use amoe_tensor::{Matrix, Rng};

/// Ops that preserve the (rows, cols) shape and are smooth enough for
/// finite differences at moderate magnitudes.
const N_SMOOTH_OPS: u64 = 6;

fn apply_smooth<'t>(which: u64, x: Var<'t>, rng: &mut Rng) -> Var<'t> {
    match which {
        0 => x.sigmoid(),
        1 => x.tanh(),
        2 => x.softplus(),
        3 => x.scale(rng.uniform_in(0.3, 1.7)),
        4 => x.add_scalar(rng.uniform_in(-0.5, 0.5)),
        5 => {
            let (r, c) = x.shape();
            let k = rng.normal_matrix(r, c, 0.0, 0.5);
            x.mul_const(&k)
        }
        _ => unreachable!(),
    }
}

/// Builds a random chain: matmul → k smooth ops → softmax → weighted sum.
fn check_chain(seed: u64, depth: usize) {
    let mut shape_rng = Rng::seed_from(seed);
    let rows = 2 + shape_rng.below(3);
    let inner = 2 + shape_rng.below(4);
    let cols = 2 + shape_rng.below(4);
    let a = shape_rng.normal_matrix(rows, inner, 0.0, 0.7);
    let b = shape_rng.normal_matrix(inner, cols, 0.0, 0.7);
    let weight = shape_rng.normal_matrix(rows, cols, 0.0, 1.0);
    let ops: Vec<u64> = (0..depth)
        .map(|_| shape_rng.below(N_SMOOTH_OPS as usize) as u64)
        .collect();

    assert_gradients(
        move |_t, v| {
            let mut op_rng = Rng::seed_from(seed ^ 0xABCD);
            let mut h = v[0].matmul(v[1]);
            for &w in &ops {
                h = apply_smooth(w, h, &mut op_rng);
            }
            (h.softmax_rows().mul_const(&weight).row_sum().mean_all()).into()
        },
        &[a, b],
        5e-3,
        3e-2,
    );
}

#[test]
fn random_chains_depth_1() {
    for seed in 0..8 {
        check_chain(1000 + seed, 1);
    }
}

#[test]
fn random_chains_depth_3() {
    for seed in 0..8 {
        check_chain(2000 + seed, 3);
    }
}

#[test]
fn random_chains_depth_6() {
    for seed in 0..6 {
        check_chain(3000 + seed, 6);
    }
}

#[test]
fn fanout_composition() {
    // A node consumed by several downstream branches must accumulate
    // gradients from each.
    let mut rng = Rng::seed_from(4321);
    let x = rng.normal_matrix(3, 4, 0.0, 0.8);
    let w = rng.normal_matrix(4, 4, 0.0, 0.8);
    assert_gradients(
        |_t, v| {
            let h = v[0].matmul(v[1]).tanh();
            let a = h.sigmoid().row_sum();
            let b = h.softplus().row_sum();
            let c = (h * h).row_sum();
            ((a + b + c).mean_all()).into()
        },
        &[x, w],
        5e-3,
        3e-2,
    );
}

#[test]
fn diamond_with_detach_breaks_one_path() {
    // y = f(x) + g(detach(x)): only f's path contributes gradient. We
    // verify against an explicitly built reference gradient.
    let x = Matrix::from_rows(&[&[0.4, -0.7], &[1.2, 0.1]]);
    let tape = amoe_autograd::Tape::new();
    let v = tape.leaf(x.clone());
    let through = v.sigmoid().sum_all();
    let blocked = v.detach().tanh().sum_all();
    let loss = through + blocked;
    let grads = tape.backward(loss);
    let g = grads.get(v).unwrap();
    for r in 0..2 {
        for c in 0..2 {
            let s = amoe_tensor::ops::sigmoid_scalar(x[(r, c)]);
            let expect = s * (1.0 - s); // only the sigmoid path
            assert!(
                (g[(r, c)] - expect).abs() < 1e-6,
                "({r},{c}): {} vs {expect}",
                g[(r, c)]
            );
        }
    }
}
