//! Finite-difference verification of every differentiable op's backward
//! pass. These tests are the correctness foundation for all training code
//! in the workspace.

use amoe_autograd::gradcheck::{assert_gradients, f32to_loss::LossId};
use amoe_autograd::{Tape, Var};
use amoe_tensor::{topk, Matrix, Rng};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn rand(rows: usize, cols: usize, seed: u64) -> Matrix {
    Rng::seed_from(seed).normal_matrix(rows, cols, 0.0, 1.0)
}

fn check(inputs: &[Matrix], f: impl Fn(&Tape, &[Var<'_>]) -> LossId) {
    assert_gradients(f, inputs, EPS, TOL);
}

#[test]
fn grad_add_sub() {
    check(&[rand(2, 3, 1), rand(2, 3, 2)], |_, v| {
        ((v[0] + v[1]).sum_all()).into()
    });
    check(&[rand(2, 3, 3), rand(2, 3, 4)], |_, v| {
        ((v[0] - v[1]).square().sum_all()).into()
    });
}

#[test]
fn grad_mul_div() {
    check(&[rand(2, 3, 5), rand(2, 3, 6)], |_, v| {
        ((v[0] * v[1]).sum_all()).into()
    });
    // Keep denominators away from zero for the divide check.
    let mut denom = rand(2, 3, 7);
    denom
        .as_mut_slice()
        .iter_mut()
        .for_each(|x| *x = 2.0 + x.abs());
    check(&[rand(2, 3, 8), denom], |_, v| {
        ((v[0] / v[1]).sum_all()).into()
    });
}

#[test]
fn grad_neg_scale_add_scalar() {
    check(&[rand(2, 2, 9)], |_, v| ((-v[0]).sum_all()).into());
    check(&[rand(2, 2, 10)], |_, v| (v[0].scale(3.5).sum_all()).into());
    check(&[rand(2, 2, 11)], |_, v| {
        (v[0].add_scalar(-1.25).square().sum_all()).into()
    });
}

#[test]
fn grad_matmul() {
    check(&[rand(3, 4, 12), rand(4, 2, 13)], |_, v| {
        (v[0].matmul(v[1]).square().sum_all()).into()
    });
}

#[test]
fn grad_matmul_chain() {
    check(&[rand(2, 3, 14), rand(3, 3, 15), rand(3, 1, 16)], |_, v| {
        (v[0].matmul(v[1]).relu().matmul(v[2]).sum_all()).into()
    });
}

#[test]
fn grad_row_broadcast_bias() {
    check(&[rand(4, 3, 17), rand(1, 3, 18)], |_, v| {
        (v[0].add_row(v[1]).square().sum_all()).into()
    });
}

#[test]
fn grad_col_broadcast() {
    check(&[rand(4, 3, 19), rand(4, 1, 20)], |_, v| {
        (v[0].mul_col(v[1]).square().sum_all()).into()
    });
}

#[test]
fn grad_activations() {
    // Shift ReLU inputs away from the kink at 0 for finite differences.
    let mut x = rand(3, 3, 21);
    x.as_mut_slice().iter_mut().for_each(|v| {
        if v.abs() < 0.1 {
            *v += 0.3;
        }
    });
    check(&[x], |_, v| (v[0].relu().square().sum_all()).into());
    check(&[rand(3, 3, 22)], |_, v| {
        (v[0].sigmoid().square().sum_all()).into()
    });
    check(&[rand(3, 3, 23)], |_, v| {
        (v[0].tanh().square().sum_all()).into()
    });
    check(&[rand(3, 3, 24)], |_, v| (v[0].softplus().sum_all()).into());
}

#[test]
fn grad_exp_ln() {
    check(&[rand(2, 3, 25)], |_, v| (v[0].exp().sum_all()).into());
    let mut pos = rand(2, 3, 26);
    pos.as_mut_slice()
        .iter_mut()
        .for_each(|x| *x = 1.0 + x.abs());
    check(&[pos], |_, v| (v[0].ln().sum_all()).into());
}

#[test]
fn grad_softmax_rows() {
    check(&[rand(3, 5, 27)], |_, v| {
        // Weighted sum makes the softmax Jacobian non-trivial.
        let w = Matrix::from_rows(&[&[1.0, -2.0, 0.5, 3.0, -1.0]]);
        (v[0].softmax_rows().mul_const(&w.gather_rows(&[0, 0, 0])))
            .sum_all()
            .into()
    });
}

#[test]
fn grad_masked_softmax_rows() {
    // Masks must stay fixed across perturbations: precompute from the
    // unperturbed logits and keep eps below the top-k margin.
    let x = rand(3, 6, 28);
    let mask = topk::row_topk_mask(&x, 3);
    let weight = rand(3, 6, 29);
    check(&[x], move |_, v| {
        (v[0].masked_softmax_rows(&mask).mul_const(&weight))
            .sum_all()
            .into()
    });
}

#[test]
fn grad_reductions() {
    check(&[rand(3, 4, 30)], |_, v| {
        (v[0].row_sum().square().sum_all()).into()
    });
    check(&[rand(3, 4, 31)], |_, v| {
        (v[0].col_sum().square().sum_all()).into()
    });
    check(&[rand(3, 4, 32)], |_, v| {
        (v[0].mean_all().square().sum_all()).into()
    });
}

#[test]
fn grad_embed_lookup() {
    check(&[rand(5, 3, 33)], |_, v| {
        // Repeated indices exercise the scatter-add.
        (v[0].embed(&[0, 2, 2, 4, 0]).square().sum_all()).into()
    });
}

#[test]
fn grad_concat_slice() {
    check(&[rand(3, 2, 34), rand(3, 3, 35)], |_, v| {
        let c = Var::concat_cols(&[v[0], v[1]]);
        (c.square().sum_all()).into()
    });
    check(&[rand(3, 5, 36)], |_, v| {
        (v[0].slice_cols(1, 4).square().sum_all()).into()
    });
}

#[test]
fn grad_mul_add_const() {
    let k = rand(3, 3, 37);
    let k2 = rand(3, 3, 38);
    check(&[rand(3, 3, 39)], move |_, v| {
        (v[0].mul_const(&k).add_const(&k2).square().sum_all()).into()
    });
}

#[test]
fn grad_bce_with_logits() {
    let targets = Matrix::from_rows(&[&[1.0, 0.0, 1.0, 0.0]]);
    check(&[rand(1, 4, 40)], move |_, v| {
        (v[0].bce_with_logits(&targets).mean_all()).into()
    });
}

#[test]
fn grad_detach_stops_flow() {
    // loss = sum(x * detach(x)); gradient must be detach(x) = x, NOT 2x.
    let x = Matrix::from_rows(&[&[2.0, -3.0]]);
    let tape = Tape::new();
    let v = tape.leaf(x.clone());
    let loss = (v * v.detach()).sum_all();
    let grads = tape.backward(loss);
    let g = grads.get(v).unwrap();
    assert!((g[(0, 0)] - 2.0).abs() < 1e-6);
    assert!((g[(0, 1)] + 3.0).abs() < 1e-6);
}

#[test]
fn grad_deep_mlp_composite() {
    // A realistic two-layer MLP head with bias, sigmoid output and BCE.
    let targets = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]);
    check(
        &[
            rand(3, 4, 41), // x
            rand(4, 5, 42), // w1
            rand(1, 5, 43), // b1
            rand(5, 1, 44), // w2
            rand(1, 1, 45), // b2
        ],
        move |_, v| {
            let h = v[0].matmul(v[1]).add_row(v[2]).tanh();
            let logits = h.matmul(v[3]).add_row(v[4]);
            (logits.bce_with_logits(&targets).mean_all()).into()
        },
    );
}

#[test]
fn grad_moe_style_mixture() {
    // Miniature MoE: gate softmax over 3 "experts", weighted sum of
    // expert outputs, BCE — the exact composition pattern used by
    // amoe-core, gradient-checked end to end.
    let targets = Matrix::from_rows(&[&[1.0], &[0.0]]);
    check(
        &[
            rand(2, 3, 46), // gate logits
            rand(2, 1, 47), // expert 0 output
            rand(2, 1, 48), // expert 1 output
            rand(2, 1, 49), // expert 2 output
        ],
        move |_, v| {
            let p = v[0].softmax_rows();
            let e = Var::concat_cols(&[v[1], v[2], v[3]]);
            let logit = (p * e).row_sum();
            (logit.bce_with_logits(&targets).mean_all()).into()
        },
    );
}
