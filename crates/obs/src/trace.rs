//! Request-scoped tracing: a lock-sharded, bounded, overwrite-oldest
//! ring of stage events, exportable as Chrome trace-event JSON.
//!
//! The serving stack records one [`TraceEvent`] per pipeline stage an
//! admitted request passes through (`admitted`, `enqueued`,
//! `queue_exit`, `batch_assembled`, `gate`, `expert`, `scatter`,
//! `reply_written`, plus `pool.*` region events from the worker pool).
//! Events carry the request's **trace id**, the **batch id** that
//! carried it through compute, the recording thread, and monotonic
//! nanosecond timestamps from a process-wide anchor.
//!
//! # Cost model
//!
//! Tracing is independent of the metrics/JSONL gate ([`crate::enabled`])
//! and follows the same contract: when off, every entry point returns
//! after a single relaxed atomic load, without allocating, locking, or
//! touching thread-locals (asserted by `tests/obs_noalloc.rs`). When
//! on, [`record`] takes one of [`SHARDS`] short mutexes chosen by the
//! recording thread and writes into a preallocated slot —
//! overwrite-oldest, so the hot path never blocks on a full buffer and
//! never grows it.
//!
//! # Sampling
//!
//! Server-assigned trace ids come from [`next_trace_id`], which keeps
//! 1-in-N ids (`AMOE_TRACE_SAMPLE=1/N` or `=N`, default every
//! request). Client-supplied ids bypass sampling: an explicit id is a
//! request to be traced.
//!
//! # Enabling and export
//!
//! `AMOE_TRACE=path` turns tracing on; the process (conventionally the
//! server, at drain) calls [`dump_if_env`] to write the ring as Chrome
//! trace-event JSON loadable by Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`. Tests and embedders force the state with
//! [`set_enabled`] / [`set_sample`] and read back via [`events`] or
//! [`chrome_json`].

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// Number of independently locked ring shards. Threads hash to a shard
/// by a process-unique thread ordinal, so the short critical section in
/// [`record`] rarely contends.
pub const SHARDS: usize = 8;

/// Events retained per shard before overwrite-oldest kicks in
/// (`SHARDS * SHARD_CAP` events process-wide, ~448 KiB).
pub const SHARD_CAP: usize = 8192;

/// One recorded stage event. `start_ns`/`end_ns` are nanoseconds since
/// the process-wide trace anchor; instantaneous events have
/// `start_ns == end_ns`.
///
/// `trace_id == 0` marks a batch-scoped event (gate/expert/scatter/pool
/// phases cover a whole batch, not one request); `batch_id == 0` marks
/// a request-scoped event recorded before batch assembly. `aux` is a
/// stage-specific payload: row counts for admission/batch events, the
/// expert index for `expert`, task counts for pool regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Request trace id (`0` for batch-scoped events).
    pub trace_id: u64,
    /// Batch id (`0` before batch assembly).
    pub batch_id: u64,
    /// Stage name (static: the recording sites own the vocabulary).
    pub stage: &'static str,
    /// Start, nanoseconds since the trace anchor.
    pub start_ns: u64,
    /// End, nanoseconds since the trace anchor (`== start_ns` for
    /// instantaneous events).
    pub end_ns: u64,
    /// Ordinal of the recording thread (process-unique, starts at 1).
    pub thread: u64,
    /// Stage-specific payload (rows, expert index, task count, ...).
    pub aux: u64,
}

/// Tri-state: 0 = uninitialised, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);
/// Keep-1-in-N sampling divisor for server-assigned ids (≥ 1).
static SAMPLE: AtomicU64 = AtomicU64::new(1);
/// Monotone allocator for server-assigned trace ids.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
/// The batch currently in compute (`0` = none). Owned by whichever
/// batcher shard wins [`try_claim_active_batch`] (or by a single-owner
/// embedder via [`set_active_batch`]); read by the forward path and
/// the pool.
static ACTIVE_BATCH: AtomicU64 = AtomicU64::new(0);
/// Export path from `AMOE_TRACE` (or [`set_trace_path`]).
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Process-unique thread ordinals for shard selection and the `tid`
/// field of exported events.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORD: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

struct Shard {
    /// Ring storage; grows once to `SHARD_CAP`, then wraps.
    buf: Vec<TraceEvent>,
    /// Next write position once `buf` is full.
    next: usize,
    /// Total events ever written (`> buf.len()` implies overwrites).
    written: u64,
}

impl Shard {
    const fn new() -> Self {
        Shard {
            buf: Vec::new(),
            next: 0,
            written: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < SHARD_CAP {
            if self.buf.capacity() == 0 {
                // One-time reservation so steady-state recording never
                // reallocates; only reached with tracing enabled.
                self.buf.reserve_exact(SHARD_CAP);
            }
            self.buf.push(ev);
        } else {
            // Overwrite-oldest: never blocks, never grows.
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % SHARD_CAP;
        }
        self.written += 1;
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.written = 0;
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const SHARD_INIT: Mutex<Shard> = Mutex::new(Shard::new());
static RING: [Mutex<Shard>; SHARDS] = [SHARD_INIT; SHARDS];

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace anchor. Monotone.
#[must_use]
pub fn now_ns() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

/// Converts an [`Instant`] captured elsewhere to anchor-relative
/// nanoseconds, so recording sites can reuse timestamps they already
/// took for metrics instead of reading the clock twice.
#[must_use]
pub fn instant_ns(t: Instant) -> u64 {
    t.saturating_duration_since(anchor()).as_nanos() as u64
}

/// Whether tracing is on: one relaxed atomic load after the first
/// call. The first call resolves `AMOE_TRACE` / `AMOE_TRACE_SAMPLE`.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Forces tracing on or off, overriding the environment. Intended for
/// tests and embedders; production code should set `AMOE_TRACE`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Sets the keep-1-in-N sampling divisor (`0` is treated as `1`).
pub fn set_sample(n: u64) {
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Current keep-1-in-N sampling divisor.
#[must_use]
pub fn sample() -> u64 {
    SAMPLE.load(Ordering::Relaxed)
}

/// Sets (or clears) the Chrome-trace export path used by
/// [`dump_if_env`], and enables tracing when a path is given.
pub fn set_trace_path(path: Option<&Path>) {
    *DUMP_PATH.lock().expect("trace path poisoned") = path.map(Path::to_path_buf);
    if path.is_some() {
        set_enabled(true);
    }
}

/// Parses `AMOE_TRACE_SAMPLE`: either `1/N` or a bare `N`; anything
/// unparseable (or zero) falls back to 1 (trace everything).
fn parse_sample(s: &str) -> u64 {
    let tail = s.strip_prefix("1/").unwrap_or(s);
    tail.trim()
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Cold path of [`enabled`]: consult the environment exactly once.
#[cold]
fn init_from_env() -> bool {
    if let Ok(s) = std::env::var("AMOE_TRACE_SAMPLE") {
        set_sample(parse_sample(&s));
    }
    let path = std::env::var("AMOE_TRACE").ok().filter(|p| !p.is_empty());
    let on = path.is_some();
    if let Some(p) = path {
        set_trace_path(Some(Path::new(&p))); // also stores "enabled"
    }
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    on
}

/// Allocates a server-side trace id, honouring sampling: returns
/// `Some(id)` for the kept 1-in-N requests, `None` (don't trace) for
/// the rest or when tracing is off. Ids are process-unique and never 0.
#[must_use]
pub fn next_trace_id() -> Option<u64> {
    if !enabled() {
        return None;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let n = sample();
    (n == 1 || id.is_multiple_of(n)).then_some(id)
}

/// Marks `batch_id` as the batch currently in compute (`0` = none), so
/// the gate/expert/scatter forward path and the worker pool can tag
/// their events without plumbing an id through every signature. Only
/// sound when a single thread owns the compute pipeline (benches,
/// tests); concurrent batcher shards must use
/// [`try_claim_active_batch`] / [`release_active_batch`] instead.
pub fn set_active_batch(batch_id: u64) {
    if !enabled() {
        return;
    }
    ACTIVE_BATCH.store(batch_id, Ordering::Relaxed);
}

/// Attempts to claim the compute marker for `batch_id` (CAS `0 →
/// batch_id`). Returns `true` when this batch now owns the marker and
/// must eventually call [`release_active_batch`]. With N batcher
/// shards computing concurrently only one can hold the marker at a
/// time; a losing shard's forward events simply go untagged
/// (`batch_id` 0) instead of being mis-attributed to another shard's
/// batch.
#[must_use]
pub fn try_claim_active_batch(batch_id: u64) -> bool {
    if !enabled() || batch_id == 0 {
        return false;
    }
    ACTIVE_BATCH
        .compare_exchange(0, batch_id, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
}

/// Releases the compute marker if `batch_id` still holds it; a no-op
/// for non-owners, so paired claim/release never clobbers another
/// shard's claim.
pub fn release_active_batch(batch_id: u64) {
    let _ = ACTIVE_BATCH.compare_exchange(batch_id, 0, Ordering::Relaxed, Ordering::Relaxed);
}

/// The batch currently in compute (`0` = none / tracing off).
#[inline]
#[must_use]
pub fn active_batch() -> u64 {
    if !enabled() {
        return 0;
    }
    ACTIVE_BATCH.load(Ordering::Relaxed)
}

/// Records a spanned stage event. No-op when tracing is off; never
/// blocks on a full ring (overwrite-oldest).
pub fn record(
    trace_id: u64,
    batch_id: u64,
    stage: &'static str,
    start_ns: u64,
    end_ns: u64,
    aux: u64,
) {
    if !enabled() {
        return;
    }
    let thread = THREAD_ORD.with(|t| *t);
    let ev = TraceEvent {
        trace_id,
        batch_id,
        stage,
        start_ns,
        end_ns: end_ns.max(start_ns),
        thread,
        aux,
    };
    let shard = (thread as usize) % SHARDS;
    RING[shard].lock().expect("trace shard poisoned").push(ev);
}

/// Records an instantaneous stage event at the current time.
pub fn record_instant(trace_id: u64, batch_id: u64, stage: &'static str, aux: u64) {
    if !enabled() {
        return;
    }
    let t = now_ns();
    record(trace_id, batch_id, stage, t, t, aux);
}

/// Snapshots the ring: every retained event, sorted by start time.
/// Works while tracing is off, so a run can be inspected after
/// `set_enabled(false)`.
#[must_use]
pub fn events() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for shard in &RING {
        out.extend_from_slice(&shard.lock().expect("trace shard poisoned").buf);
    }
    out.sort_by_key(|e| (e.start_ns, e.end_ns, e.thread));
    out
}

/// Total events ever recorded (including ones since overwritten).
#[must_use]
pub fn events_written() -> u64 {
    RING.iter()
        .map(|s| s.lock().expect("trace shard poisoned").written)
        .sum()
}

/// Clears the ring and the active-batch marker. Intended for tests and
/// embedders isolating runs; does not touch the enabled state, the
/// sampling divisor, or the id allocator.
pub fn reset() {
    for shard in &RING {
        shard.lock().expect("trace shard poisoned").clear();
    }
    ACTIVE_BATCH.store(0, Ordering::Relaxed);
}

/// Serialises events as Chrome trace-event JSON (the `traceEvents`
/// array-of-objects format Perfetto and `chrome://tracing` load).
/// Timestamps and durations are microseconds with nanosecond decimals;
/// every number is finite by construction.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(&mut out, ev.stage);
        out.push_str(",\"cat\":\"amoe\",\"ph\":\"X\",\"ts\":");
        json::write_f64(&mut out, ev.start_ns as f64 / 1e3);
        out.push_str(",\"dur\":");
        json::write_f64(&mut out, (ev.end_ns - ev.start_ns) as f64 / 1e3);
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&ev.thread.to_string());
        out.push_str(",\"args\":{\"trace_id\":");
        out.push_str(&ev.trace_id.to_string());
        out.push_str(",\"batch_id\":");
        out.push_str(&ev.batch_id.to_string());
        out.push_str(",\"aux\":");
        out.push_str(&ev.aux.to_string());
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// [`to_chrome_json`] over the current ring contents.
#[must_use]
pub fn chrome_json() -> String {
    to_chrome_json(&events())
}

/// Writes the current ring to `path` as Chrome trace JSON, returning
/// the number of exported events.
pub fn dump_to_path(path: &Path) -> std::io::Result<usize> {
    let evs = events();
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_chrome_json(&evs).as_bytes())?;
    f.flush()?;
    Ok(evs.len())
}

/// Dumps the ring to the `AMOE_TRACE` path if one is configured.
/// Returns `Some((path, events))` on success, `None` when no path is
/// set; write errors are reported on stderr rather than propagated so
/// a drain path never fails on telemetry.
pub fn dump_if_env() -> Option<(PathBuf, usize)> {
    let path = DUMP_PATH.lock().expect("trace path poisoned").clone()?;
    match dump_to_path(&path) {
        Ok(n) => Some((path, n)),
        Err(e) => {
            eprintln!("amoe-obs: trace dump to {} failed: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests toggling the global trace state.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = trace_lock();
        set_enabled(false);
        reset();
        record_instant(7, 0, "admitted", 1);
        record(7, 1, "gate", 10, 20, 0);
        assert!(events().is_empty());
        assert_eq!(next_trace_id(), None);
        set_active_batch(9);
        assert_eq!(active_batch(), 0);
    }

    #[test]
    fn active_batch_claim_is_exclusive_and_release_is_owner_only() {
        let _g = trace_lock();
        set_enabled(true);
        reset();
        assert!(try_claim_active_batch(7), "first claim wins");
        assert!(!try_claim_active_batch(9), "second claim loses");
        assert_eq!(active_batch(), 7);
        // A non-owner release must not clobber the holder's claim.
        release_active_batch(9);
        assert_eq!(active_batch(), 7);
        release_active_batch(7);
        assert_eq!(active_batch(), 0);
        // Claiming batch id 0 (= "none") is meaningless and refused.
        assert!(!try_claim_active_batch(0));
        set_enabled(false);
        assert!(!try_claim_active_batch(3), "disabled tracing never claims");
        reset();
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let _g = trace_lock();
        set_enabled(true);
        reset();
        record(3, 0, "admitted", 5, 5, 2);
        record(3, 1, "gate", 10, 40, 0);
        record(0, 1, "expert", 12, 30, 4);
        let evs = events();
        set_enabled(false);
        assert_eq!(evs.len(), 3);
        // Sorted by start time.
        assert_eq!(evs[0].stage, "admitted");
        assert_eq!(evs[1].stage, "gate");
        assert_eq!(evs[2].aux, 4);
        assert!(evs.iter().all(|e| e.end_ns >= e.start_ns));
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let _g = trace_lock();
        set_enabled(true);
        reset();
        // All from this thread → one shard; exceed its capacity.
        let n = SHARD_CAP + 100;
        for i in 0..n {
            record(i as u64 + 1, 0, "enqueued", i as u64, i as u64, 0);
        }
        let evs = events();
        set_enabled(false);
        assert_eq!(evs.len(), SHARD_CAP);
        assert_eq!(events_written(), n as u64);
        // The oldest 100 events were overwritten.
        let min_id = evs.iter().map(|e| e.trace_id).min().unwrap();
        assert_eq!(min_id, 101);
        reset();
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let _g = trace_lock();
        set_enabled(true);
        set_sample(4);
        let kept = (0..64).filter(|_| next_trace_id().is_some()).count();
        set_sample(1);
        set_enabled(false);
        assert_eq!(kept, 16);
    }

    #[test]
    fn sample_spec_parsing() {
        assert_eq!(parse_sample("1/16"), 16);
        assert_eq!(parse_sample("16"), 16);
        assert_eq!(parse_sample("1"), 1);
        assert_eq!(parse_sample("0"), 1);
        assert_eq!(parse_sample("bogus"), 1);
        assert_eq!(parse_sample("1/0"), 1);
    }

    #[test]
    fn chrome_json_shape() {
        let evs = [
            TraceEvent {
                trace_id: 1,
                batch_id: 2,
                stage: "gate",
                start_ns: 1500,
                end_ns: 3500,
                thread: 3,
                aux: 8,
            },
            TraceEvent {
                trace_id: 4,
                batch_id: 0,
                stage: "admitted",
                start_ns: 4000,
                end_ns: 4000,
                thread: 1,
                aux: 2,
            },
        ];
        let body = to_chrome_json(&evs);
        let v = json::parse(&body).expect("chrome json parses");
        let arr = v.get("traceEvents").and_then(json::Value::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        let first = &arr[0];
        assert_eq!(
            first.get("name").and_then(json::Value::as_str),
            Some("gate")
        );
        assert_eq!(first.get("ph").and_then(json::Value::as_str), Some("X"));
        assert_eq!(first.get("ts").and_then(json::Value::as_f64), Some(1.5));
        assert_eq!(first.get("dur").and_then(json::Value::as_f64), Some(2.0));
        let args = first.get("args").unwrap();
        assert_eq!(
            args.get("trace_id").and_then(json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            args.get("batch_id").and_then(json::Value::as_f64),
            Some(2.0)
        );
        assert_eq!(args.get("aux").and_then(json::Value::as_f64), Some(8.0));
        // Empty ring still serialises to a loadable document.
        assert!(json::parse(&to_chrome_json(&[])).is_ok());
    }

    #[test]
    fn dump_writes_parseable_file() {
        let _g = trace_lock();
        set_enabled(true);
        reset();
        record(1, 1, "gate", 0, 10, 0);
        let path =
            std::env::temp_dir().join(format!("amoe_trace_test_{}.json", std::process::id()));
        let n = dump_to_path(&path).expect("dump succeeds");
        set_enabled(false);
        assert_eq!(n, 1);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(json::parse(&body).is_ok());
        let _ = std::fs::remove_file(&path);
        reset();
    }
}
