//! Scoped span timers: nestable, thread-aware wall clocks.
//!
//! A [`Span`] measures the wall time between its construction and its
//! drop and records it (in nanoseconds) into the histogram named after
//! the span (`span.<area>.<phase>` by convention). Nesting is tracked
//! **per thread** — [`Span::current_path`] reports the `/`-joined
//! chain of enclosing spans on the calling thread, so spans opened
//! inside pool workers attribute to the worker that ran them rather
//! than interleaving with the parent thread's stack.
//!
//! [`timed`] is the expression form: it always returns the measured
//! [`Duration`] (callers like `serving::Stats` need the number whether
//! or not telemetry is on) and feeds the registry only when enabled.
//!
//! Cost: when telemetry is disabled a span is two relaxed atomic loads
//! and no allocation, no thread-local access and no `Instant` read.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::registry;

thread_local! {
    /// The currently open span names on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span timer. Construct with [`Span::enter`]; the elapsed
/// time is recorded when the guard drops.
pub struct Span {
    /// `None` when telemetry was disabled at entry (fully inert guard).
    start: Option<Instant>,
    name: &'static str,
}

impl Span {
    /// Opens a span named `name` on the current thread.
    #[must_use]
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { start: None, name };
        }
        STACK.with(|s| s.borrow_mut().push(name));
        Span {
            start: Some(Instant::now()),
            name,
        }
    }

    /// The `/`-joined path of the current thread's open spans
    /// (allocates when spans are open; diagnostic use only). When
    /// telemetry is disabled the stack is empty by construction
    /// ([`Span::enter`] is inert), so this returns the non-allocating
    /// empty string without touching the thread-local.
    #[must_use]
    pub fn current_path() -> String {
        if !crate::enabled() {
            return String::new();
        }
        STACK.with(|s| {
            let stack = s.borrow();
            if stack.is_empty() {
                // `join` on an empty slice doesn't allocate, but make
                // the noalloc contract independent of that detail.
                String::new()
            } else {
                stack.join("/")
            }
        })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(
                stack.last().copied(),
                Some(self.name),
                "span stack imbalance"
            );
            stack.pop();
        });
        // Histogram keys must be 'static, so the registry stores flat
        // span names (nested attribution rides on the JSONL events);
        // flat keys keep the drop path allocation-free.
        registry::histogram_record(self.name, elapsed.as_nanos() as f64);
    }
}

/// Runs `f`, returning its result and wall-clock duration. The
/// duration is additionally recorded as a [`Span`] when telemetry is
/// enabled — this is the drop-in replacement for hand-rolled
/// `Instant::now()/elapsed()` pairs that still need the number.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, Duration) {
    if !crate::enabled() {
        let start = Instant::now();
        let out = f();
        return (out, start.elapsed());
    }
    let _span = Span::enter(name);
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_duration_when_disabled() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        let (out, dt) = timed("span.test_disabled", || 41 + 1);
        assert_eq!(out, 42);
        assert!(dt >= Duration::ZERO);
        assert_eq!(
            registry::snapshot()
                .histograms
                .get("span.test_disabled")
                .map(|h| h.count()),
            None
        );
    }

    #[test]
    fn spans_record_into_histograms_when_enabled() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        registry::reset();
        {
            let _outer = Span::enter("span.test_outer");
            let _inner = Span::enter("span.test_inner");
            assert_eq!(Span::current_path(), "span.test_outer/span.test_inner");
        }
        assert_eq!(Span::current_path(), "");
        let snap = registry::snapshot();
        crate::set_enabled(false);
        assert_eq!(
            snap.histograms.get("span.test_outer").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(
            snap.histograms.get("span.test_inner").map(|h| h.count()),
            Some(1)
        );
        registry::reset();
    }

    #[test]
    fn nested_threads_keep_independent_stacks() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        registry::reset();
        let _outer = Span::enter("span.test_main");
        std::thread::scope(|s| {
            s.spawn(|| {
                // A worker thread starts with an empty stack.
                assert_eq!(Span::current_path(), "");
                let _w = Span::enter("span.test_worker");
                assert_eq!(Span::current_path(), "span.test_worker");
            });
        });
        drop(_outer);
        let snap = registry::snapshot();
        crate::set_enabled(false);
        assert_eq!(
            snap.histograms.get("span.test_worker").map(|h| h.count()),
            Some(1)
        );
        registry::reset();
    }
}
