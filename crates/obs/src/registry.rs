//! Global metrics registry: named counters, gauges and log-bucketed
//! histograms.
//!
//! Recording goes through free functions ([`counter_add`],
//! [`gauge_set`], [`histogram_record`]) that no-op — before taking any
//! lock or allocating — when telemetry is disabled. Names are
//! `&'static str` so the hot path never builds keys on the heap.
//!
//! Histograms are logarithmic: [`SUB_BUCKETS`] buckets per power of
//! two, which bounds the relative quantile error at
//! `2^(1/SUB_BUCKETS) − 1 ≈ 19%` per readout while keeping memory and
//! record cost constant. This is the standard shape for latency
//! distributions (HDR-histogram style), where spans range from
//! sub-microsecond pool regions to multi-second epochs.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Log-histogram resolution: buckets per power of two.
pub const SUB_BUCKETS: usize = 4;

/// A log-bucketed histogram of non-negative samples.
///
/// Bucket 0 holds values in `[0, 1)`; bucket `i ≥ 1` holds values in
/// `[2^((i−1)/SUB), 2^(i/SUB))` with `SUB =` [`SUB_BUCKETS`]. For span
/// timers samples are nanoseconds, so bucket 0 is "under 1 ns" and the
/// scheme covers any realistic duration.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value lands in. Negative and non-finite
    /// values are clamped into bucket 0 (recording rejects them
    /// anyway).
    #[must_use]
    pub fn bucket_index(v: f64) -> usize {
        if v.is_finite() && v >= 1.0 {
            (v.log2() * SUB_BUCKETS as f64).floor() as usize + 1
        } else {
            0
        }
    }

    /// The `[lower, upper)` boundaries of bucket `i`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        if i == 0 {
            return (0.0, 1.0);
        }
        let exp = |k: usize| 2f64.powf(k as f64 / SUB_BUCKETS as f64);
        (exp(i - 1), exp(i))
    }

    /// Records one sample. Non-finite or negative samples are dropped
    /// (the JSONL contract forbids propagating them).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let idx = Self::bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum += v;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = if self.count == 0 { v } else { self.max.max(v) };
        self.count += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (`0.0` when empty — never non-finite).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (`0.0` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (`0.0` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Quantile readout: the upper boundary of the bucket holding the
    /// `q`-quantile sample, clamped to the exact observed `[min, max]`
    /// range. `q` is clamped to `[0, 1]`; an empty histogram reads
    /// `0.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; interpolate only inside.
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(i);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The registry's three metric families.
#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

static REGISTRY: Mutex<Option<Inner>> = Mutex::new(None);

fn with_inner<R>(f: impl FnOnce(&mut Inner) -> R) -> R {
    let mut guard = REGISTRY.lock().expect("obs registry poisoned");
    f(guard.get_or_insert_with(Inner::default))
}

/// Adds `delta` to the named counter. No-op when telemetry is off.
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_inner(|r| *r.counters.entry(name).or_insert(0) += delta);
}

/// Sets the named gauge to `v`. No-op when telemetry is off or `v` is
/// non-finite.
pub fn gauge_set(name: &'static str, v: f64) {
    if !crate::enabled() || !v.is_finite() {
        return;
    }
    with_inner(|r| {
        r.gauges.insert(name, v);
    });
}

/// Records `v` into the named histogram. No-op when telemetry is off.
pub fn histogram_record(name: &'static str, v: f64) {
    if !crate::enabled() {
        return;
    }
    with_inner(|r| r.histograms.entry(name).or_default().record(v));
}

/// Reads one counter's current value (`0` when never recorded). Works
/// even while telemetry is disabled, so a run can be inspected after
/// `set_enabled(false)`. Intended for tests and embedders (e.g. the
/// serving stack's overload accounting); hot paths should record, not
/// read.
#[must_use]
pub fn counter_value(name: &str) -> u64 {
    with_inner(|r| r.counters.get(name).copied().unwrap_or(0))
}

/// Reads one gauge's current value (`None` when never set). Same
/// contract as [`counter_value`].
#[must_use]
pub fn gauge_value(name: &str) -> Option<f64> {
    with_inner(|r| r.gauges.get(name).copied())
}

/// A point-in-time copy of every metric.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram copies by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Copies the current registry contents (works even while disabled, so
/// a run can be inspected after `set_enabled(false)`).
#[must_use]
pub fn snapshot() -> Snapshot {
    with_inner(|r| Snapshot {
        counters: r
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    })
}

/// Clears every metric. Intended for tests isolating runs.
pub fn reset() {
    with_inner(|r| *r = Inner::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_the_log_grid() {
        // Bucket 0 is [0, 1); bucket i ≥ 1 is [2^((i-1)/4), 2^(i/4)).
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(0.999), 0);
        assert_eq!(Histogram::bucket_index(1.0), 1);
        assert_eq!(Histogram::bucket_index(2.0), SUB_BUCKETS + 1);
        assert_eq!(Histogram::bucket_index(4.0), 2 * SUB_BUCKETS + 1);
        assert_eq!(Histogram::bucket_index(1024.0), 10 * SUB_BUCKETS + 1);
        // Every value lands inside its bucket's bounds.
        for v in [0.0, 0.5, 1.0, 1.5, 3.0, 7.7, 1e6, 1e12] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(
                lo <= v && v < hi,
                "value {v} outside bucket {i} [{lo}, {hi})"
            );
        }
        // Buckets tile the line: bucket i's upper bound is i+1's lower.
        for i in 0..64 {
            assert_eq!(
                Histogram::bucket_bounds(i).1,
                Histogram::bucket_bounds(i + 1).0
            );
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        let factor = 2f64.powf(1.0 / SUB_BUCKETS as f64);
        for i in 1..100 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!((hi / lo - factor).abs() < 1e-12);
        }
    }

    #[test]
    fn quantiles_read_within_one_bucket_of_truth() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(f64::from(v));
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let factor = 2f64.powf(1.0 / SUB_BUCKETS as f64);
        for (q, truth) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            assert!(
                est >= truth * 0.999 && est <= truth * factor * 1.001,
                "q{q}: estimate {est} vs truth {truth}"
            );
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let mut h = Histogram::new();
        h.record(10.0);
        // A single sample: every quantile is that sample.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 10.0);
        }
    }

    #[test]
    fn empty_histogram_reads_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn non_finite_and_negative_samples_are_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
        h.record(3.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_round_trip() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset();
        counter_add("test.counter", 2);
        counter_add("test.counter", 3);
        gauge_set("test.gauge", 1.25);
        gauge_set("test.nan_gauge", f64::NAN);
        histogram_record("test.hist", 5.0);
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.counters.get("test.counter"), Some(&5));
        assert_eq!(snap.gauges.get("test.gauge"), Some(&1.25));
        // Point readers agree with the snapshot (and work while off).
        assert_eq!(counter_value("test.counter"), 5);
        assert_eq!(counter_value("test.never"), 0);
        assert_eq!(gauge_value("test.gauge"), Some(1.25));
        assert_eq!(gauge_value("test.never"), None);
        assert!(!snap.gauges.contains_key("test.nan_gauge"));
        assert_eq!(
            snap.histograms.get("test.hist").map(Histogram::count),
            Some(1)
        );
        reset();
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        reset();
        counter_add("test.off", 1);
        histogram_record("test.off_hist", 1.0);
        let snap = snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }
}
