//! Global metrics registry: named counters, gauges and log-bucketed
//! histograms.
//!
//! Recording goes through free functions ([`counter_add`],
//! [`gauge_set`], [`histogram_record`]) that no-op — before taking any
//! lock or allocating — when telemetry is disabled. Names are
//! `&'static str` so the hot path never builds keys on the heap.
//!
//! Histograms are logarithmic: [`SUB_BUCKETS`] buckets per power of
//! two, which bounds the relative quantile error at
//! `2^(1/SUB_BUCKETS) − 1 ≈ 19%` per readout while keeping memory and
//! record cost constant. This is the standard shape for latency
//! distributions (HDR-histogram style), where spans range from
//! sub-microsecond pool regions to multi-second epochs.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Log-histogram resolution: buckets per power of two.
pub const SUB_BUCKETS: usize = 4;

/// A log-bucketed histogram of non-negative samples.
///
/// Bucket 0 holds values in `[0, 1)`; bucket `i ≥ 1` holds values in
/// `[2^((i−1)/SUB), 2^(i/SUB))` with `SUB =` [`SUB_BUCKETS`]. For span
/// timers samples are nanoseconds, so bucket 0 is "under 1 ns" and the
/// scheme covers any realistic duration.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value lands in. Negative and non-finite
    /// values are clamped into bucket 0 (recording rejects them
    /// anyway).
    #[must_use]
    pub fn bucket_index(v: f64) -> usize {
        if v.is_finite() && v >= 1.0 {
            (v.log2() * SUB_BUCKETS as f64).floor() as usize + 1
        } else {
            0
        }
    }

    /// The `[lower, upper)` boundaries of bucket `i`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        if i == 0 {
            return (0.0, 1.0);
        }
        let exp = |k: usize| 2f64.powf(k as f64 / SUB_BUCKETS as f64);
        (exp(i - 1), exp(i))
    }

    /// Records one sample. Non-finite or negative samples are dropped
    /// (the JSONL contract forbids propagating them).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let idx = Self::bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum += v;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = if self.count == 0 { v } else { self.max.max(v) };
        self.count += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket sample counts, indexed by [`Histogram::bucket_index`]
    /// (trailing all-zero buckets are not materialised). The exposition
    /// layer folds these into cumulative Prometheus `_bucket` series.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (`0.0` when empty — never non-finite).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (`0.0` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (`0.0` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Resets the histogram to empty, keeping allocated bucket storage
    /// for reuse (the windowed-rotation hot path).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0.0;
        self.min = 0.0;
        self.max = 0.0;
    }

    /// Folds another histogram into this one. Bucket-exact: merging
    /// then reading a quantile equals recording every sample into one
    /// histogram (buckets are a fixed global grid).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = if self.count == 0 {
            other.max
        } else {
            self.max.max(other.max)
        };
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Quantile readout: the upper boundary of the bucket holding the
    /// `q`-quantile sample, clamped to the exact observed `[min, max]`
    /// range. `q` is clamped to `[0, 1]`; an empty histogram reads
    /// `0.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; interpolate only inside.
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(i);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The registry's metric families.
#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    windows: BTreeMap<&'static str, crate::window::WindowedHistogram>,
}

static REGISTRY: Mutex<Option<Inner>> = Mutex::new(None);

fn with_inner<R>(f: impl FnOnce(&mut Inner) -> R) -> R {
    let mut guard = REGISTRY.lock().expect("obs registry poisoned");
    f(guard.get_or_insert_with(Inner::default))
}

/// Adds `delta` to the named counter. No-op when telemetry is off.
/// Debug builds assert the name follows the exposition convention
/// ([`crate::expose::validate_metric_name`]).
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    crate::expose::debug_check_name(name);
    with_inner(|r| *r.counters.entry(name).or_insert(0) += delta);
}

/// Sets the named gauge to `v`. No-op when telemetry is off or `v` is
/// non-finite.
pub fn gauge_set(name: &'static str, v: f64) {
    if !crate::enabled() || !v.is_finite() {
        return;
    }
    crate::expose::debug_check_name(name);
    with_inner(|r| {
        r.gauges.insert(name, v);
    });
}

/// Records `v` into the named histogram. No-op when telemetry is off.
pub fn histogram_record(name: &'static str, v: f64) {
    if !crate::enabled() {
        return;
    }
    crate::expose::debug_check_name(name);
    with_inner(|r| r.histograms.entry(name).or_default().record(v));
}

/// Records `v` into the named **sliding-window** histogram (default
/// window: [`crate::window::DEFAULT_WINDOW`] over
/// [`crate::window::DEFAULT_SLOTS`] segments). No-op when telemetry is
/// off. Unlike [`histogram_record`], readouts via [`window_merged`] /
/// [`snapshot`] cover only the last window, not the process lifetime.
pub fn window_record(name: &'static str, v: f64) {
    if !crate::enabled() {
        return;
    }
    crate::expose::debug_check_name(name);
    with_inner(|r| {
        r.windows
            .entry(name)
            .or_insert_with(crate::window::WindowedHistogram::with_defaults)
            .record(v);
    });
}

/// Folds the named windowed histogram's live segments into a plain
/// [`Histogram`] (`None` when never recorded). Works while disabled.
#[must_use]
pub fn window_merged(name: &str) -> Option<Histogram> {
    with_inner(|r| {
        // BTreeMap<&'static str, _> is keyed by str content, so a
        // borrowed lookup works for any &str.
        r.windows.get_mut(name).map(|w| w.merged())
    })
}

/// Reads one counter's current value (`0` when never recorded). Works
/// even while telemetry is disabled, so a run can be inspected after
/// `set_enabled(false)`. Intended for tests and embedders (e.g. the
/// serving stack's overload accounting); hot paths should record, not
/// read.
#[must_use]
pub fn counter_value(name: &str) -> u64 {
    with_inner(|r| r.counters.get(name).copied().unwrap_or(0))
}

/// Reads one gauge's current value (`None` when never set). Same
/// contract as [`counter_value`].
#[must_use]
pub fn gauge_value(name: &str) -> Option<f64> {
    with_inner(|r| r.gauges.get(name).copied())
}

/// A point-in-time copy of every metric.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram copies by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Windowed histograms by name, folded over their live window.
    pub windows: BTreeMap<String, Histogram>,
}

/// Copies the current registry contents (works even while disabled, so
/// a run can be inspected after `set_enabled(false)`).
#[must_use]
pub fn snapshot() -> Snapshot {
    with_inner(|r| Snapshot {
        counters: r
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
        windows: r
            .windows
            .iter_mut()
            .map(|(k, v)| ((*k).to_string(), v.merged()))
            .collect(),
    })
}

/// Clears every metric. Intended for tests isolating runs.
pub fn reset() {
    with_inner(|r| *r = Inner::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_the_log_grid() {
        // Bucket 0 is [0, 1); bucket i ≥ 1 is [2^((i-1)/4), 2^(i/4)).
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(0.999), 0);
        assert_eq!(Histogram::bucket_index(1.0), 1);
        assert_eq!(Histogram::bucket_index(2.0), SUB_BUCKETS + 1);
        assert_eq!(Histogram::bucket_index(4.0), 2 * SUB_BUCKETS + 1);
        assert_eq!(Histogram::bucket_index(1024.0), 10 * SUB_BUCKETS + 1);
        // Every value lands inside its bucket's bounds.
        for v in [0.0, 0.5, 1.0, 1.5, 3.0, 7.7, 1e6, 1e12] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(
                lo <= v && v < hi,
                "value {v} outside bucket {i} [{lo}, {hi})"
            );
        }
        // Buckets tile the line: bucket i's upper bound is i+1's lower.
        for i in 0..64 {
            assert_eq!(
                Histogram::bucket_bounds(i).1,
                Histogram::bucket_bounds(i + 1).0
            );
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        let factor = 2f64.powf(1.0 / SUB_BUCKETS as f64);
        for i in 1..100 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!((hi / lo - factor).abs() < 1e-12);
        }
    }

    #[test]
    fn quantiles_read_within_one_bucket_of_truth() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(f64::from(v));
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let factor = 2f64.powf(1.0 / SUB_BUCKETS as f64);
        for (q, truth) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            assert!(
                est >= truth * 0.999 && est <= truth * factor * 1.001,
                "q{q}: estimate {est} vs truth {truth}"
            );
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn quantile_error_bound_holds_on_random_streams() {
        // Property: for any stream of samples ≥ 1 (where the log grid
        // gives a relative guarantee — bucket 0 is absolute [0, 1)),
        // the estimate brackets the exact-sort oracle from above
        // within one bucket width: truth ≤ est ≤ truth · 2^(1/SUB).
        let factor = 2f64.powf(1.0 / SUB_BUCKETS as f64);
        let mut state = 0x853C_49E6_748F_EA9Bu64; // fixed seed
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let n = 1 + (next() % 300) as usize;
            // Spread magnitudes across many decades so every trial
            // exercises a different slice of the bucket grid.
            let scale = 10f64.powi((next() % 9) as i32);
            let mut h = Histogram::new();
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                let v = 1.0 + scale * (next() % 10_000) as f64 / 997.0;
                h.record(v);
                values.push(v);
            }
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.5, 0.9, 0.95, 0.99] {
                // The histogram's own rank rule, applied to the truth.
                let rank = ((q * n as f64).ceil() as usize).max(1);
                let truth = values[rank - 1];
                let est = h.quantile(q);
                assert!(
                    est >= truth * (1.0 - 1e-9) && est <= truth * factor * (1.0 + 1e-9),
                    "trial {trial}: q={q} n={n} estimate {est} outside \
                     [{truth}, {truth} · {factor}]"
                );
            }
            // The exact extremes are tracked outside the grid.
            assert_eq!(h.quantile(0.0), values[0]);
            assert_eq!(h.quantile(1.0), values[n - 1]);
        }
        // Single-bucket edge: identical samples collapse the clamp
        // range to a point, so every quantile is exact.
        let mut h = Histogram::new();
        for _ in 0..17 {
            h.record(42.0);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42.0);
        }
        // Empty edge: the oracle has no answer; the histogram reads 0.
        assert_eq!(Histogram::new().quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let mut h = Histogram::new();
        h.record(10.0);
        // A single sample: every quantile is that sample.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 10.0);
        }
    }

    #[test]
    fn empty_histogram_reads_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn non_finite_and_negative_samples_are_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
        h.record(3.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_is_bucket_exact_and_clear_resets() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 1..=100 {
            let v = f64::from(v);
            if v <= 40.0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        // Merging an empty histogram is a no-op (min/max untouched).
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.min(), before.min());
        // Merging INTO an empty histogram adopts the other's extremes.
        let mut e = Histogram::new();
        e.merge(&whole);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), 0.0);
        a.record(2.0);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn windowed_family_round_trip() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset();
        window_record("test.win", 10.0);
        window_record("test.win", 20.0);
        let merged = window_merged("test.win").expect("window exists");
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(merged.count(), 2);
        assert_eq!(snap.windows.get("test.win").map(Histogram::count), Some(2));
        assert_eq!(window_merged("test.never").map(|h| h.count()), None);
        reset();
    }

    #[test]
    fn registry_round_trip() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        reset();
        counter_add("test.counter", 2);
        counter_add("test.counter", 3);
        gauge_set("test.gauge", 1.25);
        gauge_set("test.nan_gauge", f64::NAN);
        histogram_record("test.hist", 5.0);
        let snap = snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.counters.get("test.counter"), Some(&5));
        assert_eq!(snap.gauges.get("test.gauge"), Some(&1.25));
        // Point readers agree with the snapshot (and work while off).
        assert_eq!(counter_value("test.counter"), 5);
        assert_eq!(counter_value("test.never"), 0);
        assert_eq!(gauge_value("test.gauge"), Some(1.25));
        assert_eq!(gauge_value("test.never"), None);
        assert!(!snap.gauges.contains_key("test.nan_gauge"));
        assert_eq!(
            snap.histograms.get("test.hist").map(Histogram::count),
            Some(1)
        );
        reset();
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        reset();
        counter_add("test.off", 1);
        histogram_record("test.off_hist", 1.0);
        let snap = snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }
}
