//! Minimal JSON support for the JSONL sink: a writer that guarantees
//! finite numbers, and a validating parser used by tests and the CI
//! smoke gate to check emitted records.
//!
//! This is deliberately not a general-purpose JSON library: it covers
//! exactly the subset the telemetry schema uses (objects, arrays,
//! strings, finite numbers, booleans, null), which keeps the crate
//! dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out`. Non-finite values become `null`, so
/// emitted JSONL never contains `NaN`/`inf` (the schema contract).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps round-trip precision and always includes enough
        // digits to re-parse to the same f64.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value (the validating half of the module).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric payload if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
///
/// # Errors
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogates are not produced by our writer;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_strings() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn writer_maps_non_finite_to_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        write_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn parse_round_trips_written_strings() {
        let original = "quote\" slash\\ newline\n tab\t unicode é";
        let mut doc = String::new();
        write_str(&mut doc, original);
        assert_eq!(parse(&doc).unwrap(), Value::Str(original.to_string()));
    }

    #[test]
    fn parse_object_with_nested_types() {
        let v = parse(r#"{"a": 1.5, "b": [1, 2, 3], "c": {"d": null, "e": true}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.5));
        assert_eq!(
            v.get("b").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&Value::Null));
        assert_eq!(
            v.get("c").and_then(|c| c.get("e")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "nul", "1 2", "{} extra"] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parse_scientific_and_negative_numbers() {
        assert_eq!(parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
    }
}
