#![warn(missing_docs)]

//! Unified telemetry for the Adv & HSC-MoE stack.
//!
//! The workspace builds offline with no external crates, so this crate
//! carries its own minimal versions of the three observability
//! primitives the ROADMAP's perf work needs:
//!
//! * a **metrics registry** ([`registry`]) of named counters, gauges and
//!   log-bucketed histograms with quantile readout;
//! * **scoped span timers** ([`span`]) — nestable, thread-aware wall
//!   clocks that feed `span.<path>` histograms and replace hand-rolled
//!   `Instant` bookkeeping in hot paths;
//! * a **structured JSONL sink** ([`sink`], [`json`]) emitting one JSON
//!   object per event (training epochs, serving calls, bench rows, run
//!   manifests) to the file named by the `AMOE_OBS` environment
//!   variable;
//! * **sliding-window histograms** ([`window`]) — rotating segments
//!   over the last N seconds, feeding the serving stack's live
//!   p50/p95/p99 `STATS` readout;
//! * a **request trace ring** ([`trace`]) — lock-sharded bounded
//!   buffer of per-request stage events, exportable as Chrome
//!   trace-event JSON (`AMOE_TRACE=path`, sampled via
//!   `AMOE_TRACE_SAMPLE=1/N`), independent of the `AMOE_OBS` gate;
//! * a **Prometheus text exposition layer** ([`expose`]) — renders
//!   registry snapshots and windowed histograms (with OpenMetrics
//!   exemplars) under the `amoe_*` naming convention, plus the
//!   `validate_exposition` linter that CI runs against live scrapes.
//!
//! # Cost model
//!
//! Telemetry must be ≈ free when off. Every recording entry point
//! checks [`enabled`] first — a single relaxed atomic load — and
//! returns before allocating, locking, or touching thread-locals.
//! Span/metric names are `&'static str` so the disabled path performs
//! **zero heap allocations** (asserted by the `obs_noalloc`
//! integration test).
//!
//! # Enabling
//!
//! Telemetry turns on automatically when `AMOE_OBS` is set to a
//! writable file path (conventionally `*.jsonl`); the first recording
//! call performs the one-time initialisation. Tests and embedders can
//! force the state with [`set_enabled`] and redirect the sink with
//! [`sink::set_sink_path`].
//!
//! # JSONL guarantees
//!
//! Every emitted line is a self-contained JSON object with at least
//! `event` (record type), `ts` (seconds since process start) and
//! `thread` fields. Numbers are always finite: non-finite floats are
//! serialised as `null` by construction (see [`json::write_f64`]).

pub mod expose;
pub mod json;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;
pub mod window;

pub use registry::{
    counter_add, counter_value, gauge_set, gauge_value, histogram_record, snapshot, window_record,
    Snapshot,
};
pub use sink::{emit, emit_metrics_snapshot, Event};
pub use span::{timed, Span};
pub use window::{Exemplar, WindowedHistogram};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Tri-state: 0 = uninitialised, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is on. The hot-path gate: one relaxed atomic load
/// after the first call. The first call resolves the `AMOE_OBS`
/// environment variable (and opens the sink if it names a path).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Forces telemetry on or off, overriding the environment. Intended
/// for tests and embedders; production code should set `AMOE_OBS`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Cold path of [`enabled`]: consult `AMOE_OBS` exactly once.
#[cold]
fn init_from_env() -> bool {
    let path = std::env::var("AMOE_OBS").ok().filter(|p| !p.is_empty());
    let on = path.is_some();
    if let Some(p) = path {
        sink::set_sink_path(Some(std::path::Path::new(&p)));
    }
    // set_sink_path(Some) already stored "enabled"; make the unset case
    // sticky too. A concurrent set_enabled wins the race harmlessly.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    on
}

/// Seconds elapsed since the first telemetry call of the process — the
/// `ts` field of every JSONL record.
#[must_use]
pub fn process_time_secs() -> f64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Serialises tests that toggle the global enabled state / registry /
/// sink, which would otherwise race under the parallel test runner.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        let _guard = test_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn process_time_is_monotone() {
        let a = process_time_secs();
        let b = process_time_secs();
        assert!(b >= a && a >= 0.0);
    }
}
