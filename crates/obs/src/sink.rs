//! The structured JSONL sink: one JSON object per line, appended to
//! the file named by `AMOE_OBS` (or set programmatically for tests).
//!
//! Events are built with the [`Event`] field builder, which guarantees
//! the schema invariants: every record carries `event`, `ts` and
//! `thread` fields, and every number is finite (non-finite floats
//! serialise as `null`, see [`crate::json::write_f64`]).

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json;

/// The open sink: target path plus an append-mode file handle.
struct SinkFile {
    path: PathBuf,
    file: std::fs::File,
}

static SINK: Mutex<Option<SinkFile>> = Mutex::new(None);

/// Points the JSONL sink at `path` (append mode; the file is created
/// if missing), or closes it with `None`. Setting a path also enables
/// telemetry; clearing it disables it. Intended for tests and
/// embedders — production runs set the `AMOE_OBS` environment
/// variable instead.
pub fn set_sink_path(path: Option<&Path>) {
    let mut sink = SINK.lock().expect("obs sink poisoned");
    match path {
        None => {
            *sink = None;
            crate::set_enabled(false);
        }
        Some(p) => match OpenOptions::new().create(true).append(true).open(p) {
            Ok(file) => {
                *sink = Some(SinkFile {
                    path: p.to_path_buf(),
                    file,
                });
                crate::set_enabled(true);
            }
            Err(e) => {
                eprintln!(
                    "amoe-obs: cannot open sink {}: {e}; telemetry disabled",
                    p.display()
                );
                *sink = None;
                crate::set_enabled(false);
            }
        },
    }
}

/// The current sink path, if a sink is open.
#[must_use]
pub fn sink_path() -> Option<PathBuf> {
    SINK.lock()
        .expect("obs sink poisoned")
        .as_ref()
        .map(|s| s.path.clone())
}

/// One field value of an event record.
#[derive(Clone, Debug)]
enum FieldValue {
    Str(String),
    U64(u64),
    F64(f64),
    U64Arr(Vec<u64>),
    F64Arr(Vec<f64>),
}

/// A structured telemetry record under construction.
///
/// ```
/// let e = amoe_obs::Event::new("train_epoch")
///     .str("model", "Adv & HSC-MoE")
///     .u64("epoch", 1)
///     .f64("loss", 0.693);
/// amoe_obs::emit(&e);
/// ```
#[derive(Clone, Debug)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Starts a record of type `kind` (the `event` field).
    #[must_use]
    pub fn new(kind: &'static str) -> Event {
        Event {
            kind,
            fields: Vec::new(),
        }
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Event {
        self.fields.push((key, FieldValue::Str(v.into())));
        self
    }

    /// Adds an unsigned-integer field.
    #[must_use]
    pub fn u64(mut self, key: &'static str, v: u64) -> Event {
        self.fields.push((key, FieldValue::U64(v)));
        self
    }

    /// Adds a float field (`null` in the JSON if non-finite).
    #[must_use]
    pub fn f64(mut self, key: &'static str, v: f64) -> Event {
        self.fields.push((key, FieldValue::F64(v)));
        self
    }

    /// Adds an array-of-integers field (e.g. per-expert dispatch
    /// counts).
    #[must_use]
    pub fn u64_array(mut self, key: &'static str, v: impl IntoIterator<Item = u64>) -> Event {
        self.fields
            .push((key, FieldValue::U64Arr(v.into_iter().collect())));
        self
    }

    /// Adds an array-of-floats field.
    #[must_use]
    pub fn f64_array(mut self, key: &'static str, v: impl IntoIterator<Item = f64>) -> Event {
        self.fields
            .push((key, FieldValue::F64Arr(v.into_iter().collect())));
        self
    }

    /// The record type.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Serialises the record as one JSON object, prepending the
    /// standard `event` / `ts` / `thread` envelope fields.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"event\":");
        json::write_str(&mut out, self.kind);
        let _ = write!(out, ",\"ts\":");
        json::write_f64(&mut out, crate::process_time_secs());
        out.push_str(",\"thread\":");
        json::write_str(&mut out, std::thread::current().name().unwrap_or("unnamed"));
        for (key, value) in &self.fields {
            out.push(',');
            json::write_str(&mut out, key);
            out.push(':');
            match value {
                FieldValue::Str(s) => json::write_str(&mut out, s),
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => json::write_f64(&mut out, *v),
                FieldValue::U64Arr(vs) => {
                    out.push('[');
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{v}");
                    }
                    out.push(']');
                }
                FieldValue::F64Arr(vs) => {
                    out.push('[');
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        json::write_f64(&mut out, *v);
                    }
                    out.push(']');
                }
            }
        }
        out.push('}');
        out
    }

    /// A compact single-line human rendering of the same fields, used
    /// by verbose/stderr modes so the console and the JSONL stay in
    /// sync field-for-field.
    #[must_use]
    pub fn to_human(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "[{}]", self.kind);
        for (key, value) in &self.fields {
            match value {
                FieldValue::Str(s) => {
                    let _ = write!(out, " {key}={s}");
                }
                FieldValue::U64(v) => {
                    let _ = write!(out, " {key}={v}");
                }
                FieldValue::F64(v) => {
                    let _ = write!(out, " {key}={v:.5}");
                }
                FieldValue::U64Arr(vs) => {
                    let _ = write!(out, " {key}={vs:?}");
                }
                FieldValue::F64Arr(vs) => {
                    let _ = write!(out, " {key}=[");
                    for (i, v) in vs.iter().enumerate() {
                        let _ = write!(out, "{}{v:.4}", if i > 0 { "," } else { "" });
                    }
                    out.push(']');
                }
            }
        }
        out
    }
}

/// Writes `event` as one line to the sink. No-op when telemetry is
/// disabled or no sink file is open (e.g. enabled via
/// [`crate::set_enabled`] for registry-only use).
pub fn emit(event: &Event) {
    if !crate::enabled() {
        return;
    }
    let line = event.to_json();
    let mut sink = SINK.lock().expect("obs sink poisoned");
    if let Some(s) = sink.as_mut() {
        // Single write_all of line+\n under the lock keeps lines whole
        // even with events emitted from pool worker threads.
        let mut buf = line;
        buf.push('\n');
        if let Err(e) = s.file.write_all(buf.as_bytes()) {
            eprintln!("amoe-obs: sink write failed ({e}); closing sink");
            *sink = None;
        }
    }
}

/// Emits a `metrics_snapshot` event summarising every registry metric:
/// counters and gauges verbatim, histograms (and windowed histograms,
/// folded over their live window) as
/// `<name>.count/.mean/.p50/.p90/.max` (nanosecond-valued for span
/// histograms). Call at the end of a run so per-phase span timings
/// land in the JSONL next to the per-event records.
pub fn emit_metrics_snapshot() {
    if !crate::enabled() {
        return;
    }
    let snap = crate::registry::snapshot();
    let mut event = Event::new("metrics_snapshot");
    for (name, v) in &snap.counters {
        event.fields.push((leak_name(name), FieldValue::U64(*v)));
    }
    for (name, v) in &snap.gauges {
        event.fields.push((leak_name(name), FieldValue::F64(*v)));
    }
    for (name, h) in snap.histograms.iter().chain(snap.windows.iter()) {
        let stats = [
            ("count", h.count() as f64),
            ("mean", h.mean()),
            ("p50", h.quantile(0.5)),
            ("p90", h.quantile(0.9)),
            ("max", h.max()),
        ];
        for (suffix, value) in stats {
            event.fields.push((
                leak_name(&format!("{name}.{suffix}")),
                FieldValue::F64(value),
            ));
        }
    }
    emit(&event);
}

/// Interns a dynamic metric name. Snapshot emission is a cold path
/// (once per run) over a bounded metric namespace, so leaking the
/// handful of composed keys is the pragmatic way to satisfy the
/// `&'static str` field keys that keep the hot path allocation-free.
fn leak_name(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn event_json_is_valid_and_ordered() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let e = Event::new("test_event")
            .str("model", "MoE \"quoted\"")
            .u64("epoch", 3)
            .f64("loss", 0.5)
            .f64("bad", f64::NAN)
            .u64_array("dispatch", [1, 2, 3])
            .f64_array("times", [0.1, 0.2]);
        let doc = parse(&e.to_json()).expect("event serialises to valid JSON");
        crate::set_enabled(false);
        assert_eq!(doc.get("event").and_then(Value::as_str), Some("test_event"));
        assert!(doc.get("ts").and_then(Value::as_f64).is_some());
        assert!(doc.get("thread").and_then(Value::as_str).is_some());
        assert_eq!(
            doc.get("model").and_then(Value::as_str),
            Some("MoE \"quoted\"")
        );
        assert_eq!(doc.get("epoch").and_then(Value::as_f64), Some(3.0));
        assert_eq!(doc.get("bad"), Some(&Value::Null));
        assert_eq!(
            doc.get("dispatch")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn human_rendering_mentions_every_field() {
        let e = Event::new("test_event")
            .str("model", "MoE")
            .u64("epoch", 3)
            .f64("loss", 0.5);
        let h = e.to_human();
        assert!(h.contains("[test_event]") && h.contains("model=MoE"));
        assert!(h.contains("epoch=3") && h.contains("loss=0.50000"));
    }

    #[test]
    fn sink_appends_parseable_lines() {
        let _guard = crate::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("amoe_obs_sink_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        set_sink_path(Some(&path));
        assert!(crate::enabled());
        emit(&Event::new("test_a").u64("n", 1));
        emit(&Event::new("test_b").f64("x", 2.5));
        set_sink_path(None);
        assert!(!crate::enabled());
        let body = std::fs::read_to_string(&path).expect("sink file exists");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse(line).expect("every sink line parses");
        }
        let _ = std::fs::remove_file(&path);
    }
}
