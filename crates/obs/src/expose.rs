//! Prometheus / OpenMetrics text exposition for the registry.
//!
//! The registry records under the workspace's **dotted** names
//! (`serve.requests`, `pool.region`, `serve.queue_depth.shard0`) so
//! JSONL consumers keep the schema they have depended on since PR 2.
//! This module is the compatibility layer that maps those names onto a
//! consistent Prometheus naming scheme at scrape time:
//!
//! * every family is prefixed `amoe_` and dots become underscores
//!   (`serve.requests` → `amoe_serve_requests`);
//! * counters get the `_total` unit suffix;
//! * time-valued families are **rescaled to base units**: a `_us`,
//!   `_ms` or `_ns` suffix becomes `_seconds` and every exported
//!   number (bucket bounds, sums, gauge values) is multiplied by the
//!   matching power of ten — dashboards never see mixed units;
//! * a trailing `.shard<N>` segment becomes a `{shard="N"}` label, so
//!   per-shard series form one family instead of N;
//! * log-bucketed histograms export as cumulative `_bucket` /
//!   `_sum` / `_count` series on the registry's global grid, and a
//!   windowed histogram's retained [`Exemplar`] renders as an
//!   OpenMetrics exemplar on the bucket containing it.
//!
//! [`validate_metric_name`] is the recording-side half of the
//! convention: registry entry points `debug_assert!` it, so a new
//! dotted name that cannot be exposed cleanly (uppercase, empty
//! segments, unbounded `shard` cardinality) fails loudly in tests
//! while release binaries keep recording.
//!
//! [`validate_exposition`] is the scrape-side half: a linter for the
//! rendered text (grammar, finite values, monotone cumulative buckets,
//! exemplar syntax) used by `amoe_bench` and CI so the `/metrics`
//! endpoint cannot silently rot.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::registry::{Histogram, Snapshot};
use crate::window::Exemplar;

/// Highest `.shard<N>` index the naming convention accepts. Shard
/// labels are the only sanctioned label dimension, and a bounded index
/// is what keeps them low-cardinality.
pub const MAX_SHARD_LABEL: u64 = 4096;

/// Checks a dotted registry name against the recording convention:
/// non-empty `.`-separated segments of `[a-z0-9_]` starting with a
/// letter, at most 100 bytes, and any trailing `shard<N>` segment
/// bounded by [`MAX_SHARD_LABEL`] (the high-cardinality guard).
///
/// # Errors
/// Describes the first violation.
pub fn validate_metric_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("metric name is empty".into());
    }
    if name.len() > 100 {
        return Err(format!("metric name {name:?} exceeds 100 bytes"));
    }
    for segment in name.split('.') {
        if segment.is_empty() {
            return Err(format!("metric name {name:?} has an empty segment"));
        }
        if !segment.as_bytes()[0].is_ascii_lowercase() {
            return Err(format!(
                "metric name {name:?}: segment {segment:?} must start with a lowercase letter"
            ));
        }
        if let Some(bad) = segment
            .chars()
            .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_'))
        {
            return Err(format!(
                "metric name {name:?}: segment {segment:?} contains {bad:?} \
                 (want [a-z0-9_], '.'-separated)"
            ));
        }
        if let Some(idx) = segment.strip_prefix("shard") {
            if let Ok(n) = idx.parse::<u64>() {
                if n >= MAX_SHARD_LABEL {
                    return Err(format!(
                        "metric name {name:?}: shard index {n} exceeds {MAX_SHARD_LABEL} \
                         (high-cardinality label)"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Debug-assert wrapper used by the registry entry points.
pub(crate) fn debug_check_name(name: &str) {
    debug_assert!(
        validate_metric_name(name).is_ok(),
        "{}",
        validate_metric_name(name).unwrap_err()
    );
}

/// What a dotted registry name exposes as.
#[derive(Clone, Debug, PartialEq)]
pub struct PromName {
    /// Prometheus family name (`amoe_*`, unit-suffixed).
    pub family: String,
    /// Labels extracted from the dotted name (`shard` only, today).
    pub labels: Vec<(String, String)>,
    /// Multiplier applied to every exported value (unit rescaling).
    pub scale: f64,
}

/// Maps a dotted registry name to its Prometheus family, labels and
/// unit scale. `counter` appends `_total` (the counter unit suffix).
#[must_use]
pub fn prom_name(raw: &str, counter: bool) -> PromName {
    let mut labels = Vec::new();
    let mut base = raw;
    // A trailing `.shard<N>` segment becomes the `shard` label.
    if let Some((head, tail)) = raw.rsplit_once('.') {
        if let Some(idx) = tail.strip_prefix("shard") {
            if !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) {
                labels.push(("shard".to_string(), idx.to_string()));
                base = head;
            }
        }
    }
    let mut family: String = base
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    // Unit suffixes: time rescales to seconds, the base unit.
    let mut scale = 1.0;
    for (suffix, replacement, s) in [
        ("_us", "_seconds", 1e-6),
        ("_ms", "_seconds", 1e-3),
        ("_ns", "_seconds", 1e-9),
        ("_secs", "_seconds", 1.0),
    ] {
        if let Some(stripped) = family.strip_suffix(suffix) {
            family = format!("{stripped}{replacement}");
            scale = s;
            break;
        }
    }
    if counter && !family.ends_with("_total") {
        family.push_str("_total");
    }
    if !family.starts_with("amoe_") {
        family = format!("amoe_{family}");
    }
    PromName {
        family,
        labels,
        scale,
    }
}

fn write_label_set(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Formats an exposition float: finite shortest-roundtrip decimal
/// (non-finite values must never reach the page — callers guard).
fn fmt_value(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite exposition value");
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral values print without an exponent or trailing zeros.
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Incremental builder for one exposition page.
///
/// Callers append families (a `# TYPE` line is emitted once per
/// family, on first use — keep a family's series together) and close
/// the page with [`Renderer::finish`], which appends the OpenMetrics
/// `# EOF` terminator.
#[derive(Default)]
pub struct Renderer {
    out: String,
    typed: BTreeSet<String>,
}

impl Renderer {
    /// An empty page.
    #[must_use]
    pub fn new() -> Renderer {
        Renderer::default()
    }

    fn type_line(&mut self, family: &str, kind: &str) {
        if self.typed.insert(family.to_string()) {
            let _ = writeln!(self.out, "# TYPE {family} {kind}");
        }
    }

    /// Renders a counter (dotted `raw` name, `_total` suffix applied).
    pub fn counter(&mut self, raw: &str, v: u64) {
        let name = prom_name(raw, true);
        self.type_line(&name.family, "counter");
        self.out.push_str(&name.family);
        write_label_set(&mut self.out, &name.labels);
        let _ = writeln!(self.out, " {v}");
    }

    /// Renders a gauge (dotted `raw` name, unit-rescaled).
    pub fn gauge(&mut self, raw: &str, v: f64) {
        if !v.is_finite() {
            return;
        }
        let name = prom_name(raw, false);
        self.type_line(&name.family, "gauge");
        self.out.push_str(&name.family);
        write_label_set(&mut self.out, &name.labels);
        let _ = writeln!(self.out, " {}", fmt_value(v * name.scale));
    }

    /// Renders a gauge with explicit extra labels (appended after any
    /// labels extracted from the name). Used for `amoe_build_info`.
    pub fn gauge_with(&mut self, raw: &str, extra: &[(&str, &str)], v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut name = prom_name(raw, false);
        name.labels.extend(
            extra
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string())),
        );
        self.type_line(&name.family, "gauge");
        self.out.push_str(&name.family);
        write_label_set(&mut self.out, &name.labels);
        let _ = writeln!(self.out, " {}", fmt_value(v * name.scale));
    }

    /// Renders a log-bucketed histogram as cumulative `_bucket` /
    /// `_sum` / `_count` series (unit-rescaled). Only buckets that
    /// change the cumulative count are emitted — the grid is global,
    /// so sparse emission stays `histogram_quantile`-compatible. A
    /// windowed exemplar renders on the first bucket containing it.
    pub fn histogram(&mut self, raw: &str, h: &Histogram, exemplar: Option<Exemplar>) {
        let name = prom_name(raw, false);
        self.type_line(&name.family, "histogram");
        let mut exemplar = exemplar.filter(|e| e.value.is_finite() && e.trace_id != 0);
        let mut cumulative = 0u64;
        for (i, &c) in h.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let (_, upper) = Histogram::bucket_bounds(i);
            let le = upper * name.scale;
            self.out.push_str(&name.family);
            self.out.push_str("_bucket");
            let mut labels = name.labels.clone();
            labels.push(("le".to_string(), fmt_value(le)));
            write_label_set(&mut self.out, &labels);
            let _ = write!(self.out, " {cumulative}");
            // The exemplar belongs to the first bucket whose upper
            // bound covers it (OpenMetrics: exemplar value ≤ le).
            if let Some(e) = exemplar {
                if e.value * name.scale <= le {
                    let _ = write!(
                        self.out,
                        " # {{trace_id=\"{}\"}} {}",
                        e.trace_id,
                        fmt_value(e.value * name.scale)
                    );
                    exemplar = None;
                }
            }
            self.out.push('\n');
        }
        // The +Inf bucket always closes the series (and catches an
        // exemplar larger than every finite bound).
        self.out.push_str(&name.family);
        self.out.push_str("_bucket");
        let mut labels = name.labels.clone();
        labels.push(("le".to_string(), "+Inf".to_string()));
        write_label_set(&mut self.out, &labels);
        let _ = write!(self.out, " {}", h.count());
        if let Some(e) = exemplar {
            let _ = write!(
                self.out,
                " # {{trace_id=\"{}\"}} {}",
                e.trace_id,
                fmt_value(e.value * name.scale)
            );
        }
        self.out.push('\n');
        self.out.push_str(&name.family);
        self.out.push_str("_sum");
        write_label_set(&mut self.out, &name.labels);
        let _ = writeln!(self.out, " {}", fmt_value(h.sum() * name.scale));
        self.out.push_str(&name.family);
        self.out.push_str("_count");
        write_label_set(&mut self.out, &name.labels);
        let _ = writeln!(self.out, " {}", h.count());
    }

    /// Renders every family of a registry [`Snapshot`]: counters,
    /// gauges, lifetime histograms, and windowed histograms (already
    /// folded over their live window).
    pub fn snapshot(&mut self, snap: &Snapshot) {
        for (name, v) in &snap.counters {
            self.counter(name, *v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name, *v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(name, h, None);
        }
        for (name, h) in &snap.windows {
            self.histogram(name, h, None);
        }
    }

    /// The families rendered so far. Callers mixing native and
    /// registry sources use this to skip registry families they have
    /// already rendered authoritatively (duplicate series in one
    /// family would make real Prometheus servers reject the scrape).
    #[must_use]
    pub fn families(&self) -> BTreeSet<String> {
        self.typed.clone()
    }

    /// Closes the page with the OpenMetrics `# EOF` terminator.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push_str("# EOF\n");
        self.out
    }
}

// ---------------------------------------------------------------------------
// Exposition linter
// ---------------------------------------------------------------------------

/// A parsed sample line: name, label pairs, and the value remainder.
type SampleParts<'a> = (&'a str, Vec<(String, String)>, &'a str);

/// Splits `name{labels} rest` into its parts; labels may be absent.
fn split_sample(line: &str) -> Result<SampleParts<'_>, String> {
    let name_end = line.find(['{', ' ']).ok_or("sample has no value")?;
    let name = &line[..name_end];
    if !line[name_end..].starts_with('{') {
        return Ok((name, Vec::new(), line[name_end..].trim_start()));
    }
    let mut labels = Vec::new();
    let bytes = line.as_bytes();
    let mut i = name_end + 1;
    loop {
        if i >= bytes.len() {
            return Err("unterminated label set".into());
        }
        if bytes[i] == b'}' {
            i += 1;
            break;
        }
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let key = &line[key_start..i];
        if key.is_empty() || i + 1 >= bytes.len() || bytes[i + 1] != b'"' {
            return Err(format!("malformed label near {key:?}"));
        }
        i += 2; // skip ="
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err("unterminated label value".into());
            }
            match bytes[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    if i + 1 >= bytes.len() {
                        return Err("dangling escape in label value".into());
                    }
                    value.push(match bytes[i + 1] {
                        b'n' => '\n',
                        other => other as char,
                    });
                    i += 2;
                }
                other => {
                    value.push(other as char);
                    i += 1;
                }
            }
        }
        labels.push((key.to_string(), value));
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
    Ok((name, labels, line[i..].trim_start()))
}

fn valid_family_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .next()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_' || b == b':')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

/// The family a sample series belongs to for `# TYPE` matching:
/// histogram sample suffixes fold back onto the declared family.
fn family_of<'a>(name: &'a str, typed: &BTreeSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            if typed.contains(stripped) {
                return stripped;
            }
        }
    }
    name
}

fn parse_finite(s: &str, what: &str, lineno: usize) -> Result<f64, String> {
    let v: f64 = s
        .parse()
        .map_err(|_| format!("line {lineno}: {what} {s:?} is not a number"))?;
    if !v.is_finite() {
        return Err(format!("line {lineno}: {what} {s:?} is not finite"));
    }
    Ok(v)
}

/// Per-series state for cumulative-bucket checking.
#[derive(Default)]
struct BucketSeries {
    last_le: Option<f64>,
    last_cumulative: Option<f64>,
    inf_value: Option<f64>,
    count_value: Option<f64>,
}

/// Lints a rendered exposition page: line grammar, `amoe_`-prefixed
/// family names declared by a `# TYPE` before their first sample,
/// finite non-negative sample values, strictly-increasing `le` bounds
/// with non-decreasing cumulative bucket counts ending in `+Inf`,
/// `_count` consistent with the `+Inf` bucket, well-formed exemplars
/// (value within its bucket's bound), and a final `# EOF`.
///
/// Returns the number of sample lines.
///
/// # Errors
/// Describes the first violation, with its line number.
pub fn validate_exposition(body: &str) -> Result<usize, String> {
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut kinds: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut buckets: std::collections::BTreeMap<String, BucketSeries> = Default::default();
    let mut samples = 0usize;
    let mut saw_eof = false;
    for (idx, line) in body.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(format!("line {lineno}: content after # EOF"));
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment == "EOF" {
                saw_eof = true;
                continue;
            }
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(family), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("line {lineno}: malformed # TYPE"));
                };
                if !valid_family_name(family) {
                    return Err(format!("line {lineno}: bad family name {family:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if !typed.insert(family.to_string()) {
                    return Err(format!("line {lineno}: duplicate # TYPE for {family}"));
                }
                kinds.insert(family.to_string(), kind.to_string());
                continue;
            }
            if comment.starts_with("HELP ") {
                continue;
            }
            return Err(format!("line {lineno}: unrecognised comment {line:?}"));
        }
        // Sample line.
        samples += 1;
        let (name, labels, rest) = split_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !valid_family_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        if !name.starts_with("amoe_") {
            return Err(format!(
                "line {lineno}: {name:?} violates the amoe_ naming convention"
            ));
        }
        let family = family_of(name, &typed).to_string();
        if !typed.contains(&family) {
            return Err(format!(
                "line {lineno}: sample {name:?} precedes its # TYPE declaration"
            ));
        }
        let kind = kinds.get(&family).map(String::as_str).unwrap_or("untyped");
        // Value, optionally followed by an exemplar after " # ".
        let (value_part, exemplar_part) = match rest.split_once(" # ") {
            Some((v, e)) => (v.trim(), Some(e.trim())),
            None => (rest.trim(), None),
        };
        let value = parse_finite(value_part, "sample value", lineno)?;
        if (kind == "counter" || kind == "histogram") && value < 0.0 && !name.ends_with("_sum") {
            return Err(format!("line {lineno}: negative cumulative value {value}"));
        }
        // Histogram bucket bookkeeping.
        if kind == "histogram" && name.ends_with("_bucket") {
            let le_raw = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or(format!("line {lineno}: bucket without le label"))?;
            let mut series_key = format!("{family}|");
            for (k, v) in labels.iter().filter(|(k, _)| k != "le") {
                let _ = write!(series_key, "{k}={v},");
            }
            let state = buckets.entry(series_key).or_default();
            let le = if le_raw == "+Inf" {
                f64::INFINITY
            } else {
                parse_finite(&le_raw, "le bound", lineno)?
            };
            if let Some(prev) = state.last_le {
                if le <= prev {
                    return Err(format!(
                        "line {lineno}: le bounds not increasing ({le} after {prev})"
                    ));
                }
            }
            if let Some(prev) = state.last_cumulative {
                if value < prev {
                    return Err(format!(
                        "line {lineno}: cumulative bucket count decreased ({value} < {prev})"
                    ));
                }
            }
            state.last_le = Some(le);
            state.last_cumulative = Some(value);
            if le.is_infinite() {
                state.inf_value = Some(value);
            }
            if let Some(ex) = exemplar_part {
                let ex_line = format!("x{ex}");
                let (_, ex_labels, ex_rest) =
                    split_sample(&ex_line).map_err(|e| format!("line {lineno}: {e}"))?;
                if ex_labels.is_empty() {
                    return Err(format!("line {lineno}: exemplar without labels"));
                }
                let mut parts = ex_rest.split_whitespace();
                let ex_value =
                    parse_finite(parts.next().unwrap_or_default(), "exemplar value", lineno)?;
                if let Some(ts) = parts.next() {
                    parse_finite(ts, "exemplar timestamp", lineno)?;
                }
                if parts.next().is_some() {
                    return Err(format!("line {lineno}: trailing exemplar tokens"));
                }
                if ex_value > le {
                    return Err(format!(
                        "line {lineno}: exemplar value {ex_value} exceeds bucket le {le}"
                    ));
                }
            }
        } else if exemplar_part.is_some() && kind != "counter" {
            return Err(format!(
                "line {lineno}: exemplar on a non-bucket, non-counter sample"
            ));
        } else if kind == "histogram" && name.ends_with("_count") {
            let mut series_key = format!("{family}|");
            for (k, v) in &labels {
                let _ = write!(series_key, "{k}={v},");
            }
            buckets.entry(series_key).or_default().count_value = Some(value);
        }
    }
    if !saw_eof {
        return Err("page is missing the # EOF terminator".into());
    }
    for (series, state) in &buckets {
        match (state.inf_value, state.count_value) {
            (None, _) if state.last_le.is_some() => {
                return Err(format!("series {series}: no +Inf bucket"));
            }
            (Some(inf), Some(count)) if inf != count => {
                return Err(format!(
                    "series {series}: _count {count} disagrees with +Inf bucket {inf}"
                ));
            }
            _ => {}
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_convention_accepts_the_existing_vocabulary() {
        for name in [
            "serve.requests",
            "serve.request_latency_us",
            "serve.queue_depth.shard0",
            "pool.region_reuse",
            "pool.spawn_ns",
            "span.train_epoch",
            "trainer.epoch",
        ] {
            assert!(validate_metric_name(name).is_ok(), "{name} should pass");
        }
    }

    #[test]
    fn name_convention_rejects_violations() {
        for name in [
            "",
            "Serve.requests",
            "serve..requests",
            "serve.requests.",
            "serve.latency ms",
            "serve.9lives",
            "serve.queue_depth.shard99999",
        ] {
            assert!(validate_metric_name(name).is_err(), "{name:?} should fail");
        }
        assert!(validate_metric_name(&"x".repeat(101)).is_err());
    }

    #[test]
    fn prom_name_mapping() {
        let n = prom_name("serve.requests", true);
        assert_eq!(n.family, "amoe_serve_requests_total");
        assert!(n.labels.is_empty());
        assert_eq!(n.scale, 1.0);

        let n = prom_name("serve.request_latency_us", false);
        assert_eq!(n.family, "amoe_serve_request_latency_seconds");
        assert_eq!(n.scale, 1e-6);

        let n = prom_name("pool.spawn_ns", false);
        assert_eq!(n.family, "amoe_pool_spawn_seconds");
        assert_eq!(n.scale, 1e-9);

        let n = prom_name("serve.queue_depth.shard3", false);
        assert_eq!(n.family, "amoe_serve_queue_depth");
        assert_eq!(n.labels, vec![("shard".to_string(), "3".to_string())]);

        // Already-conforming names are left alone.
        let n = prom_name("amoe_uptime_seconds", false);
        assert_eq!(n.family, "amoe_uptime_seconds");
        // `.shardfoo` is not a shard label.
        let n = prom_name("serve.shardfoo", false);
        assert_eq!(n.family, "amoe_serve_shardfoo");
        assert!(n.labels.is_empty());
    }

    #[test]
    fn rendered_page_passes_the_linter() {
        let mut h = Histogram::new();
        for v in [10.0, 200.0, 3000.0, 3000.0] {
            h.record(v);
        }
        let mut r = Renderer::new();
        r.counter("serve.requests", 41);
        r.counter("serve.requests.shard0", 40);
        r.counter("serve.requests.shard1", 1);
        r.gauge("serve.queue_depth", 3.0);
        r.gauge_with(
            "amoe_build_info",
            &[("version", "0.1.0"), ("quantized", "false")],
            1.0,
        );
        r.histogram(
            "serve.window.request_latency_us",
            &h,
            Some(Exemplar {
                value: 3000.0,
                trace_id: 77,
            }),
        );
        let page = r.finish();
        let samples = validate_exposition(&page).expect("page lints clean");
        // 3 counters + 2 gauges + (3 buckets + Inf + sum + count).
        assert_eq!(samples, 11);
        assert!(page.contains("amoe_serve_requests_total{shard=\"0\"} 40"));
        assert!(page.contains("# TYPE amoe_serve_window_request_latency_seconds histogram"));
        assert!(page.contains("trace_id=\"77\""));
        assert!(page.ends_with("# EOF\n"));
        // The exemplar landed on a bucket whose le covers 3000 µs.
        let ex_line = page
            .lines()
            .find(|l| l.contains("trace_id"))
            .expect("exemplar line");
        assert!(ex_line.contains("_bucket"), "exemplar on a bucket line");
    }

    #[test]
    fn empty_histogram_renders_consistently() {
        let mut r = Renderer::new();
        r.histogram("serve.window.compute_us", &Histogram::new(), None);
        let page = r.finish();
        // +Inf bucket, _sum, _count.
        assert_eq!(validate_exposition(&page), Ok(3));
        assert!(page.contains("amoe_serve_window_compute_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(page.contains("amoe_serve_window_compute_seconds_count 0"));
    }

    #[test]
    fn snapshot_rendering_covers_every_family() {
        let snap = Snapshot {
            counters: [("serve.requests".to_string(), 7u64)].into(),
            gauges: [("serve.queue_depth".to_string(), 2.0f64)].into(),
            histograms: [("serve.request_latency_us".to_string(), {
                let mut h = Histogram::new();
                h.record(500.0);
                h
            })]
            .into(),
            windows: [("serve.win_us".to_string(), {
                let mut h = Histogram::new();
                h.record(40.0);
                h
            })]
            .into(),
        };
        let mut r = Renderer::new();
        r.snapshot(&snap);
        let page = r.finish();
        assert!(validate_exposition(&page).is_ok());
        for family in [
            "amoe_serve_requests_total",
            "amoe_serve_queue_depth",
            "amoe_serve_request_latency_seconds_sum",
            "amoe_serve_win_seconds_count",
        ] {
            assert!(page.contains(family), "missing {family} in:\n{page}");
        }
    }

    #[test]
    fn linter_rejects_violations() {
        // No # EOF.
        assert!(validate_exposition("# TYPE amoe_x counter\namoe_x_total 1\n").is_err());
        // Sample before TYPE.
        assert!(validate_exposition("amoe_x_total 1\n# EOF\n").is_err());
        // Non-amoe name.
        assert!(validate_exposition("# TYPE other_x counter\nother_x 1\n# EOF\n").is_err());
        // Non-finite value.
        assert!(validate_exposition("# TYPE amoe_x gauge\namoe_x NaN\n# EOF\n").is_err());
        // Unparseable value.
        assert!(validate_exposition("# TYPE amoe_x gauge\namoe_x abc\n# EOF\n").is_err());
        // Decreasing cumulative buckets.
        let bad = "# TYPE amoe_h histogram\n\
                   amoe_h_bucket{le=\"1\"} 5\n\
                   amoe_h_bucket{le=\"2\"} 3\n\
                   amoe_h_bucket{le=\"+Inf\"} 5\n\
                   amoe_h_sum 4\namoe_h_count 5\n# EOF\n";
        assert!(validate_exposition(bad).is_err());
        // Non-increasing le bounds.
        let bad = "# TYPE amoe_h histogram\n\
                   amoe_h_bucket{le=\"2\"} 1\n\
                   amoe_h_bucket{le=\"1\"} 2\n\
                   amoe_h_bucket{le=\"+Inf\"} 2\n# EOF\n";
        assert!(validate_exposition(bad).is_err());
        // Missing +Inf bucket.
        let bad = "# TYPE amoe_h histogram\namoe_h_bucket{le=\"1\"} 1\n# EOF\n";
        assert!(validate_exposition(bad).is_err());
        // _count disagrees with +Inf.
        let bad = "# TYPE amoe_h histogram\n\
                   amoe_h_bucket{le=\"+Inf\"} 3\n\
                   amoe_h_sum 1\namoe_h_count 4\n# EOF\n";
        assert!(validate_exposition(bad).is_err());
        // Exemplar value beyond its bucket bound.
        let bad = "# TYPE amoe_h histogram\n\
                   amoe_h_bucket{le=\"1\"} 1 # {trace_id=\"9\"} 5\n\
                   amoe_h_bucket{le=\"+Inf\"} 1\n# EOF\n";
        assert!(validate_exposition(bad).is_err());
        // Exemplar on a gauge.
        let bad = "# TYPE amoe_g gauge\namoe_g 1 # {trace_id=\"9\"} 1\n# EOF\n";
        assert!(validate_exposition(bad).is_err());
        // Duplicate TYPE.
        let bad = "# TYPE amoe_x counter\n# TYPE amoe_x counter\n# EOF\n";
        assert!(validate_exposition(bad).is_err());
        // Content after EOF.
        assert!(validate_exposition("# EOF\namoe_x 1\n").is_err());
        // Unterminated label set.
        assert!(validate_exposition("# TYPE amoe_x gauge\namoe_x{a=\"b 1\n# EOF\n").is_err());
    }

    #[test]
    fn linter_accepts_exemplar_with_timestamp() {
        let body = "# TYPE amoe_h histogram\n\
                    amoe_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"3\"} 0.5 1700000000.5\n\
                    amoe_h_sum 0.5\namoe_h_count 1\n# EOF\n";
        assert_eq!(validate_exposition(body), Ok(3));
    }
}
