//! Rotating sliding-window histograms.
//!
//! A [`WindowedHistogram`] keeps the last `window` worth of samples in
//! `slots` rotating [`Histogram`] segments of `window / slots` each.
//! Recording lands in the segment covering "now"; segments older than
//! the window are cleared lazily as time advances, so both record and
//! readout are O(slots) worst case with no timer thread. Readout
//! ([`WindowedHistogram::merged`]) folds the live segments into one
//! [`Histogram`], from which the usual count/mean/quantile readers
//! apply — quantiles inherit the registry's log-bucket relative error
//! bound of `2^(1/SUB_BUCKETS) − 1 ≈ 19%`.
//!
//! The window is **approximate by one slot**: a merged readout covers
//! between `window − slot` and `window` of history depending on where
//! "now" falls inside the current slot. With the default 15 slots over
//! 60 s that is ±4 s — the right trade for live `STATS` quantiles.
//!
//! Time is injectable: the `*_at_ns` methods take explicit
//! nanoseconds-since-anchor so tests drive rotation deterministically;
//! the plain methods use a per-histogram [`Instant`] anchor.

use std::time::{Duration, Instant};

use crate::registry::Histogram;

/// Default number of rotating segments.
pub const DEFAULT_SLOTS: usize = 15;

/// Default window length for registry-managed windowed histograms.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(60);

/// One retained sample linking a recorded value to the trace id of the
/// request that produced it — the OpenMetrics exemplar exposed on
/// `/metrics`, so a quantile spike on a dashboard links to a loadable
/// trace of the offending request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exemplar {
    /// The observed value (same unit as the histogram's samples).
    pub value: f64,
    /// Trace id of the request that produced it (never 0).
    pub trace_id: u64,
}

/// A sliding-window histogram of non-negative samples (see module
/// docs for semantics).
///
/// Each rotating slot additionally retains **one exemplar**: the
/// max-value traced observation recorded while the slot was current
/// ([`WindowedHistogram::record_traced`]). Exemplars expire with their
/// slot, so the one surfaced by [`WindowedHistogram::exemplar`] is
/// always from inside the live window.
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    slots: Vec<Histogram>,
    /// Per-slot max-value traced observation (parallel to `slots`).
    exemplars: Vec<Option<Exemplar>>,
    /// Nanoseconds covered by one slot.
    slot_ns: u64,
    /// Absolute slot number (`ns / slot_ns`) last observed; slots in
    /// `(cur_slot - slots.len(), cur_slot]` are live.
    cur_slot: u64,
    anchor: Instant,
}

impl WindowedHistogram {
    /// A windowed histogram covering `window` in `slots` segments.
    /// Both are clamped to at least 1 ms / 1 slot.
    #[must_use]
    pub fn new(window: Duration, slots: usize) -> Self {
        let slots = slots.max(1);
        let window_ns = (window.as_nanos() as u64).max(1_000_000 * slots as u64);
        WindowedHistogram {
            slots: vec![Histogram::new(); slots],
            exemplars: vec![None; slots],
            slot_ns: window_ns / slots as u64,
            cur_slot: 0,
            anchor: Instant::now(),
        }
    }

    /// A windowed histogram with the default window and slot count.
    #[must_use]
    pub fn with_defaults() -> Self {
        WindowedHistogram::new(DEFAULT_WINDOW, DEFAULT_SLOTS)
    }

    /// The configured window length.
    #[must_use]
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.slot_ns * self.slots.len() as u64)
    }

    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Rotates to the slot covering `ns`, clearing every segment whose
    /// coverage expired since the last observation.
    fn advance(&mut self, ns: u64) {
        let target = ns / self.slot_ns;
        if target <= self.cur_slot {
            return; // same slot, or a stale timestamp from a racer
        }
        let n = self.slots.len() as u64;
        let steps = (target - self.cur_slot).min(n);
        for i in 1..=steps {
            let idx = ((self.cur_slot + i) % n) as usize;
            self.slots[idx].clear();
            self.exemplars[idx] = None;
        }
        self.cur_slot = target;
    }

    /// Records one sample at an explicit anchor-relative time.
    pub fn record_at_ns(&mut self, ns: u64, v: f64) {
        self.record_traced_at_ns(ns, v, 0);
    }

    /// Records one sample "now".
    pub fn record(&mut self, v: f64) {
        self.record_at_ns(self.now_ns(), v);
    }

    /// Records one sample carrying the trace id of the request that
    /// produced it (`0` = untraced: identical to [`record`]). A traced
    /// sample that is the slot's maximum so far becomes the slot's
    /// exemplar.
    ///
    /// [`record`]: WindowedHistogram::record
    pub fn record_traced(&mut self, v: f64, trace_id: u64) {
        self.record_traced_at_ns(self.now_ns(), v, trace_id);
    }

    /// [`record_traced`] at an explicit anchor-relative time.
    ///
    /// [`record_traced`]: WindowedHistogram::record_traced
    pub fn record_traced_at_ns(&mut self, ns: u64, v: f64, trace_id: u64) {
        self.advance(ns);
        let idx = (self.cur_slot % self.slots.len() as u64) as usize;
        self.slots[idx].record(v);
        if trace_id != 0
            && v.is_finite()
            && v >= 0.0
            && self.exemplars[idx].is_none_or(|e| v > e.value)
        {
            self.exemplars[idx] = Some(Exemplar { value: v, trace_id });
        }
    }

    /// Folds the segments live at an explicit anchor-relative time
    /// into one [`Histogram`].
    #[must_use]
    pub fn merged_at_ns(&mut self, ns: u64) -> Histogram {
        self.advance(ns);
        let mut out = Histogram::new();
        for s in &self.slots {
            out.merge(s);
        }
        out
    }

    /// Folds the currently live segments into one [`Histogram`].
    #[must_use]
    pub fn merged(&mut self) -> Histogram {
        self.merged_at_ns(self.now_ns())
    }

    /// The max-value exemplar across the segments live at an explicit
    /// anchor-relative time (`None` when no traced sample is inside
    /// the window).
    #[must_use]
    pub fn exemplar_at_ns(&mut self, ns: u64) -> Option<Exemplar> {
        self.advance(ns);
        self.exemplars
            .iter()
            .flatten()
            .copied()
            .max_by(|a, b| a.value.total_cmp(&b.value))
    }

    /// The max-value exemplar across the currently live segments.
    #[must_use]
    pub fn exemplar(&mut self) -> Option<Exemplar> {
        self.exemplar_at_ns(self.now_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn wh(window_ms: u64, slots: usize) -> WindowedHistogram {
        WindowedHistogram::new(Duration::from_millis(window_ms), slots)
    }

    #[test]
    fn samples_within_the_window_are_all_visible() {
        let mut w = wh(100, 10);
        for i in 0..50 {
            w.record_at_ns(i * MS, f64::from(u32::try_from(i).unwrap()) + 1.0);
        }
        let h = w.merged_at_ns(50 * MS);
        assert_eq!(h.count(), 50);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 50.0);
    }

    #[test]
    fn old_samples_rotate_out() {
        let mut w = wh(100, 10);
        w.record_at_ns(0, 5.0);
        // Still visible just inside the window...
        assert_eq!(w.merged_at_ns(95 * MS).count(), 1);
        // ...gone once its slot expires.
        assert_eq!(w.merged_at_ns(101 * MS).count(), 0);
    }

    #[test]
    fn big_time_jumps_clear_everything_once() {
        let mut w = wh(100, 10);
        for i in 0..10 {
            w.record_at_ns(i * 10 * MS, 1.0);
        }
        assert_eq!(w.merged_at_ns(99 * MS).count(), 10);
        // A jump many windows forward must not wrap into live slots.
        assert_eq!(w.merged_at_ns(100_000 * MS).count(), 0);
        w.record_at_ns(100_001 * MS, 2.0);
        assert_eq!(w.merged_at_ns(100_001 * MS).count(), 1);
    }

    #[test]
    fn stale_timestamps_never_unrotate() {
        let mut w = wh(100, 10);
        w.record_at_ns(50 * MS, 1.0);
        // A racer's older timestamp lands in the current slot instead
        // of resurrecting an expired one.
        w.record_at_ns(10 * MS, 2.0);
        assert_eq!(w.merged_at_ns(50 * MS).count(), 2);
    }

    #[test]
    fn merged_quantiles_match_single_histogram() {
        let mut w = wh(1_000, 10);
        let mut h = Histogram::new();
        for i in 1..=500u32 {
            let v = f64::from(i);
            w.record_at_ns(u64::from(i) * MS, v);
            h.record(v);
        }
        let m = w.merged_at_ns(500 * MS);
        assert_eq!(m.count(), h.count());
        assert_eq!(m.sum(), h.sum());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(m.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn exemplar_tracks_the_max_traced_sample_and_expires() {
        let mut w = wh(100, 10);
        w.record_traced_at_ns(0, 5.0, 11);
        w.record_traced_at_ns(MS, 9.0, 22);
        w.record_traced_at_ns(2 * MS, 7.0, 33);
        // Untraced samples never become exemplars, even when larger.
        w.record_at_ns(3 * MS, 100.0);
        let e = w.exemplar_at_ns(3 * MS).expect("traced sample retained");
        assert_eq!(
            e,
            Exemplar {
                value: 9.0,
                trace_id: 22
            }
        );
        // A later slot's smaller max coexists; the window max wins.
        w.record_traced_at_ns(50 * MS, 6.0, 44);
        assert_eq!(w.exemplar_at_ns(50 * MS).unwrap().trace_id, 22);
        // Once the early slots rotate out, the survivor takes over.
        assert_eq!(w.exemplar_at_ns(130 * MS).unwrap().trace_id, 44);
        // And it too expires with its slot.
        assert_eq!(w.exemplar_at_ns(200 * MS), None);
    }

    #[test]
    fn exemplar_ignores_non_finite_and_zero_ids() {
        let mut w = wh(100, 10);
        w.record_traced_at_ns(0, f64::NAN, 7);
        w.record_traced_at_ns(0, 3.0, 0);
        assert_eq!(w.exemplar_at_ns(0), None);
        w.record_traced_at_ns(0, 3.0, 7);
        assert_eq!(w.exemplar_at_ns(0).unwrap().trace_id, 7);
    }

    #[test]
    fn wall_clock_path_records() {
        let mut w = WindowedHistogram::with_defaults();
        w.record(3.0);
        w.record(4.0);
        let h = w.merged();
        assert_eq!(h.count(), 2);
        assert!(w.window() >= Duration::from_secs(59));
    }
}
