//! Binary cross-entropy on predicted probabilities (training diagnostic).

/// Mean binary log-loss of probabilities against labels, clamping
/// predictions to `[1e-7, 1 - 1e-7]` for numerical safety.
///
/// # Panics
/// Panics if lengths differ or `probs` is empty.
#[must_use]
pub fn log_loss(probs: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(
        probs.len(),
        labels.len(),
        "log_loss: {} probs vs {} labels",
        probs.len(),
        labels.len()
    );
    assert!(!probs.is_empty(), "log_loss: empty input");
    let mut total = 0.0f64;
    for (&p, &y) in probs.iter().zip(labels) {
        let p = f64::from(p).clamp(1e-7, 1.0 - 1e-7);
        total -= if y { p.ln() } else { (1.0 - p).ln() };
    }
    total / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_correct_is_small() {
        let l = log_loss(&[0.99, 0.01], &[true, false]);
        assert!(l < 0.02);
    }

    #[test]
    fn confident_wrong_is_large() {
        let l = log_loss(&[0.01, 0.99], &[true, false]);
        assert!(l > 4.0);
    }

    #[test]
    fn half_probability_is_ln2() {
        let l = log_loss(&[0.5, 0.5], &[true, false]);
        assert!((l - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn extreme_probs_clamped_finite() {
        let l = log_loss(&[0.0, 1.0], &[true, false]);
        assert!(l.is_finite());
    }
}
