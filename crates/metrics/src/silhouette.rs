//! Silhouette score — the quantitative stand-in for "the t-SNE plot
//! clusters nicely" (paper Fig. 6). Higher means points sit closer to
//! their own class than to the nearest other class.

use amoe_tensor::Matrix;

/// Mean silhouette coefficient of `points` (rows) under integer `labels`.
///
/// Uses squared-free Euclidean distance. Points in singleton classes get
/// silhouette 0 by convention. Returns `None` when fewer than 2 classes
/// are present.
///
/// # Panics
/// Panics if `labels.len() != points.rows()`.
#[must_use]
pub fn silhouette_score(points: &Matrix, labels: &[usize]) -> Option<f64> {
    assert_eq!(
        labels.len(),
        points.rows(),
        "silhouette_score: {} labels vs {} points",
        labels.len(),
        points.rows()
    );
    let n = points.rows();
    let n_classes = labels.iter().copied().max()? + 1;
    let mut class_sizes = vec![0usize; n_classes];
    for &l in labels {
        class_sizes[l] += 1;
    }
    if class_sizes.iter().filter(|&&c| c > 0).count() < 2 {
        return None;
    }

    let dist = |i: usize, j: usize| -> f64 {
        points
            .row(i)
            .iter()
            .zip(points.row(j))
            .map(|(a, b)| f64::from(a - b) * f64::from(a - b))
            .sum::<f64>()
            .sqrt()
    };

    let mut total = 0.0;
    for i in 0..n {
        // Mean distance to every class.
        let mut sums = vec![0.0f64; n_classes];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist(i, j);
            }
        }
        let own = labels[i];
        if class_sizes[own] <= 1 {
            continue; // silhouette 0 contribution
        }
        let a = sums[own] / (class_sizes[own] - 1) as f64;
        let b = (0..n_classes)
            .filter(|&c| c != own && class_sizes[c] > 0)
            .map(|c| sums[c] / class_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = (b - a) / a.max(b);
        total += s;
    }
    Some(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_near_one() {
        let pts = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[10.0, 10.0],
            &[10.1, 10.0],
            &[10.0, 10.1],
        ]);
        let s = silhouette_score(&pts, &[0, 0, 0, 1, 1, 1]).unwrap();
        assert!(s > 0.95, "s = {s}");
    }

    #[test]
    fn shuffled_labels_near_zero_or_negative() {
        let pts = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 10.0], &[0.1, 0.0], &[10.1, 10.0]]);
        // Labels split each true cluster across classes.
        let s = silhouette_score(&pts, &[0, 0, 1, 1]).unwrap();
        assert!(s < 0.1, "s = {s}");
    }

    #[test]
    fn single_class_undefined() {
        let pts = Matrix::from_rows(&[&[0.0], &[1.0]]);
        assert!(silhouette_score(&pts, &[0, 0]).is_none());
    }

    #[test]
    fn better_separation_scores_higher() {
        let tight = Matrix::from_rows(&[&[0.0], &[0.2], &[5.0], &[5.2]]);
        let loose = Matrix::from_rows(&[&[0.0], &[2.0], &[3.0], &[5.0]]);
        let labels = [0usize, 0, 1, 1];
        let st = silhouette_score(&tight, &labels).unwrap();
        let sl = silhouette_score(&loose, &labels).unwrap();
        assert!(st > sl);
    }
}
