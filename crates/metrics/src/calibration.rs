//! Probability calibration: expected calibration error (ECE).
//!
//! Ranking metrics (AUC/NDCG) are invariant to monotone score
//! transforms, but a deployed CTR/CVR model's *probabilities* feed
//! bidding and blending downstream, so calibration is tracked alongside
//! them in industrial systems like the paper's.

/// Expected calibration error with equal-width probability bins:
/// `Σ_b (n_b / n) · |mean_conf_b − frac_pos_b|`.
///
/// Returns `None` for empty input.
///
/// # Panics
/// Panics if `bins == 0` or lengths differ.
#[must_use]
pub fn expected_calibration_error(probs: &[f32], labels: &[bool], bins: usize) -> Option<f64> {
    assert!(bins > 0, "expected_calibration_error: bins must be > 0");
    assert_eq!(
        probs.len(),
        labels.len(),
        "expected_calibration_error: {} probs vs {} labels",
        probs.len(),
        labels.len()
    );
    if probs.is_empty() {
        return None;
    }
    let mut count = vec![0usize; bins];
    let mut conf = vec![0f64; bins];
    let mut pos = vec![0usize; bins];
    for (&p, &y) in probs.iter().zip(labels) {
        let p = f64::from(p).clamp(0.0, 1.0);
        let b = ((p * bins as f64) as usize).min(bins - 1);
        count[b] += 1;
        conf[b] += p;
        pos[b] += usize::from(y);
    }
    let n = probs.len() as f64;
    let mut ece = 0.0;
    for b in 0..bins {
        if count[b] == 0 {
            continue;
        }
        let mean_conf = conf[b] / count[b] as f64;
        let frac_pos = pos[b] as f64 / count[b] as f64;
        ece += (count[b] as f64 / n) * (mean_conf - frac_pos).abs();
    }
    Some(ece)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_is_zero() {
        // Probability 0.5 with exactly half positives.
        let probs = vec![0.5f32; 100];
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&probs, &labels, 10).unwrap();
        assert!(ece < 1e-9, "ece {ece}");
    }

    #[test]
    fn overconfident_is_penalised() {
        // Predicts 0.9 but only 50% positives.
        let probs = vec![0.9f32; 100];
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&probs, &labels, 10).unwrap();
        assert!((ece - 0.4).abs() < 1e-6, "ece {ece}");
    }

    #[test]
    fn empty_is_none() {
        assert!(expected_calibration_error(&[], &[], 10).is_none());
    }

    #[test]
    fn extreme_probs_binned_safely() {
        let probs = [0.0f32, 1.0, 0.999, 0.001];
        let labels = [false, true, true, false];
        let ece = expected_calibration_error(&probs, &labels, 10).unwrap();
        assert!(ece < 0.01, "ece {ece}");
    }

    #[test]
    #[should_panic(expected = "bins must be")]
    fn zero_bins_panics() {
        let _ = expected_calibration_error(&[0.5], &[true], 0);
    }
}
