#![warn(missing_docs)]

//! Evaluation metrics for the reproduction.
//!
//! All ranking metrics follow the paper's protocol (Sec. 5.1.2): they are
//! computed **per session** and averaged over sessions; sessions without
//! both a positive and a negative label are skipped for AUC (undefined)
//! and sessions without a positive are skipped for NDCG.

pub mod auc;
pub mod calibration;
pub mod concentration;
pub mod feature_importance;
pub mod logloss;
pub mod ndcg;
pub mod silhouette;

pub use auc::{roc_auc, session_auc};
pub use calibration::expected_calibration_error;
pub use concentration::{brand_concentration, BrandConcentration};
pub use feature_importance::feature_importance;
pub use logloss::log_loss;
pub use ndcg::{ndcg, session_ndcg};
pub use silhouette::silhouette_score;

/// Scores and labels for one ranked session.
#[derive(Clone, Debug)]
pub struct SessionEval<'a> {
    /// Model scores, one per item.
    pub scores: &'a [f32],
    /// Binary labels, one per item.
    pub labels: &'a [bool],
}
