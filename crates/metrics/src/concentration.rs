//! Brand sales concentration (paper Fig. 3): how many brands cover the
//! top 80% of sales volume in a category.

use std::collections::HashMap;

/// Result of a brand-concentration analysis over one category.
#[derive(Clone, Debug, PartialEq)]
pub struct BrandConcentration {
    /// Distinct brands observed.
    pub total_brands: usize,
    /// Smallest number of brands (by descending sales) covering at least
    /// the requested share of total sales.
    pub covering_brands: usize,
    /// `covering_brands / total_brands`.
    pub proportion: f64,
}

/// Computes the minimal brand set covering `share` (e.g. 0.8) of the
/// total sales volume from `(brand, sales)` observations.
///
/// Returns `None` for empty input or non-positive total sales.
///
/// # Panics
/// Panics if `share` is not in `(0, 1]`.
#[must_use]
pub fn brand_concentration(
    observations: &[(usize, f32)],
    share: f64,
) -> Option<BrandConcentration> {
    assert!(
        share > 0.0 && share <= 1.0,
        "brand_concentration: share must be in (0,1], got {share}"
    );
    if observations.is_empty() {
        return None;
    }
    let mut by_brand: HashMap<usize, f64> = HashMap::new();
    for &(brand, sales) in observations {
        *by_brand.entry(brand).or_insert(0.0) += f64::from(sales.max(0.0));
    }
    let total: f64 = by_brand.values().sum();
    if total <= 0.0 {
        return None;
    }
    let mut sales: Vec<f64> = by_brand.values().copied().collect();
    sales.sort_by(|a, b| b.partial_cmp(a).expect("finite sales"));
    let target = share * total;
    let mut acc = 0.0;
    let mut covering = 0usize;
    for s in &sales {
        acc += s;
        covering += 1;
        if acc >= target {
            break;
        }
    }
    let total_brands = sales.len();
    Some(BrandConcentration {
        total_brands,
        covering_brands: covering,
        proportion: covering as f64 / total_brands as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dominant_brand() {
        // Brand 0 holds 90% of sales: one brand covers 80%.
        let obs = [(0usize, 90.0f32), (1, 5.0), (2, 5.0)];
        let c = brand_concentration(&obs, 0.8).unwrap();
        assert_eq!(c.covering_brands, 1);
        assert_eq!(c.total_brands, 3);
        assert!((c.proportion - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_brands_need_most() {
        let obs: Vec<(usize, f32)> = (0..10).map(|b| (b, 10.0)).collect();
        let c = brand_concentration(&obs, 0.8).unwrap();
        assert_eq!(c.covering_brands, 8);
    }

    #[test]
    fn aggregates_repeat_observations() {
        let obs = [(0usize, 10.0f32), (0, 10.0), (1, 5.0)];
        let c = brand_concentration(&obs, 0.8).unwrap();
        // Brand 0 has 20 of 25 = 80%: exactly covered by one brand.
        assert_eq!(c.covering_brands, 1);
    }

    #[test]
    fn empty_and_zero_sales() {
        assert!(brand_concentration(&[], 0.8).is_none());
        assert!(brand_concentration(&[(0, 0.0)], 0.8).is_none());
    }

    #[test]
    fn steeper_distribution_concentrates_more() {
        let steep: Vec<(usize, f32)> = (0..50)
            .map(|b| (b, ((b + 1) as f32).powf(-1.6) * 1000.0))
            .collect();
        let flat: Vec<(usize, f32)> = (0..50)
            .map(|b| (b, ((b + 1) as f32).powf(-0.7) * 1000.0))
            .collect();
        let cs = brand_concentration(&steep, 0.8).unwrap();
        let cf = brand_concentration(&flat, 0.8).unwrap();
        assert!(
            cs.covering_brands < cf.covering_brands,
            "steep {} !< flat {}",
            cs.covering_brands,
            cf.covering_brands
        );
    }
}
