//! Normalised Discounted Cumulative Gain (Järvelin & Kekäläinen 2002,
//! the paper's ref \[13\]) with binary gains.

use crate::SessionEval;

/// NDCG of one ranked list, optionally truncated to the top `k` shown
/// positions (`None` = full list). Binary gains: `gain = label`.
///
/// Returns `None` when there is no positive item (the ideal DCG is zero).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn ndcg(scores: &[f32], labels: &[bool], k: Option<usize>) -> Option<f64> {
    assert_eq!(
        scores.len(),
        labels.len(),
        "ndcg: {} scores vs {} labels",
        scores.len(),
        labels.len()
    );
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 {
        return None;
    }
    let cutoff = k.unwrap_or(scores.len()).min(scores.len());

    // Ranking induced by the scores (descending, stable on ties by index
    // for determinism).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("ndcg: NaN score")
            .then(a.cmp(&b))
    });

    let dcg: f64 = order
        .iter()
        .take(cutoff)
        .enumerate()
        .filter(|(_, &i)| labels[i])
        .map(|(rank, _)| 1.0 / ((rank + 2) as f64).log2())
        .sum();

    // Ideal DCG: all positives first.
    let idcg: f64 = (0..pos.min(cutoff))
        .map(|rank| 1.0 / ((rank + 2) as f64).log2())
        .sum();

    Some(dcg / idcg)
}

/// Mean per-session NDCG (optionally truncated at `k`) over sessions
/// where it is defined.
#[must_use]
pub fn session_ndcg(sessions: &[SessionEval<'_>], k: Option<usize>) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0usize;
    for s in sessions {
        if let Some(v) = ndcg(s.scores, s.labels, k) {
            total += v;
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let v = ndcg(&[0.9, 0.8, 0.1], &[true, true, false], None).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_below_one() {
        let v = ndcg(&[0.1, 0.2, 0.9], &[true, false, false], None).unwrap();
        // Positive lands at rank 3: DCG = 1/log2(4) = 0.5, IDCG = 1.
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn truncation_drops_deep_hits() {
        let scores = [0.9, 0.8, 0.7, 0.1];
        let labels = [false, false, false, true];
        // Positive at rank 4; NDCG@2 sees no hit but IDCG@2 is nonzero.
        let v = ndcg(&scores, &labels, Some(2)).unwrap();
        assert_eq!(v, 0.0);
        let full = ndcg(&scores, &labels, None).unwrap();
        assert!(full > 0.0);
    }

    #[test]
    fn no_positive_undefined() {
        assert!(ndcg(&[0.5, 0.6], &[false, false], None).is_none());
    }

    #[test]
    fn all_positive_is_one() {
        let v = ndcg(&[0.1, 0.9], &[true, true], None).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn better_ranking_scores_higher() {
        let labels = [true, false, true, false, false];
        let good = ndcg(&[0.9, 0.5, 0.8, 0.3, 0.1], &labels, None).unwrap();
        let bad = ndcg(&[0.1, 0.5, 0.2, 0.9, 0.8], &labels, None).unwrap();
        assert!(good > bad);
    }

    #[test]
    fn session_average() {
        let s1 = SessionEval {
            scores: &[0.9, 0.1],
            labels: &[true, false],
        };
        let s2 = SessionEval {
            scores: &[0.1, 0.9],
            labels: &[true, false],
        };
        let avg = session_ndcg(&[s1, s2], None).unwrap();
        let expect = (1.0 + 1.0 / 3f64.log2()) / 2.0;
        assert!((avg - expect).abs() < 1e-12);
    }
}
