//! ROC-AUC, global and per-session.

use crate::SessionEval;

/// ROC-AUC of `scores` against binary `labels` via the Mann–Whitney
/// statistic with tie correction (ties count 1/2).
///
/// Returns `None` when the labels are single-class (AUC undefined).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> Option<f64> {
    assert_eq!(
        scores.len(),
        labels.len(),
        "roc_auc: {} scores vs {} labels",
        scores.len(),
        labels.len()
    );
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }
    // Rank-based computation: O(n log n), exact tie handling via average
    // ranks.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("roc_auc: NaN score")
    });
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j] (1-based ranks).
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let pos_f = pos as f64;
    let neg_f = neg as f64;
    let u = rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0;
    Some(u / (pos_f * neg_f))
}

/// Mean per-session AUC over sessions where it is defined, per the
/// paper's evaluation protocol. Returns `None` if no session qualifies.
#[must_use]
pub fn session_auc(sessions: &[SessionEval<'_>]) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0usize;
    for s in sessions {
        if let Some(a) = roc_auc(s.scores, s.labels) {
            total += a;
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let auc = roc_auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]).unwrap();
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_is_zero() {
        let auc = roc_auc(&[0.1, 0.9], &[true, false]).unwrap();
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn ties_give_half() {
        let auc = roc_auc(&[0.5, 0.5], &[true, false]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_undefined() {
        assert!(roc_auc(&[0.1, 0.2], &[true, true]).is_none());
        assert!(roc_auc(&[0.1, 0.2], &[false, false]).is_none());
    }

    #[test]
    fn matches_pairwise_definition() {
        // Brute-force pairwise comparison on a small random-ish case.
        let scores = [0.3f32, 0.7, 0.7, 0.1, 0.9, 0.4];
        let labels = [false, true, false, false, true, true];
        let fast = roc_auc(&scores, &labels).unwrap();
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..6 {
            for j in 0..6 {
                if labels[i] && !labels[j] {
                    den += 1.0;
                    if scores[i] > scores[j] {
                        num += 1.0;
                    } else if scores[i] == scores[j] {
                        num += 0.5;
                    }
                }
            }
        }
        assert!((fast - num / den).abs() < 1e-12, "{fast} vs {}", num / den);
    }

    #[test]
    fn session_auc_averages_and_skips() {
        let s1 = SessionEval {
            scores: &[0.9, 0.1],
            labels: &[true, false], // AUC 1
        };
        let s2 = SessionEval {
            scores: &[0.1, 0.9],
            labels: &[true, false], // AUC 0
        };
        let skip = SessionEval {
            scores: &[0.5, 0.6],
            labels: &[false, false], // undefined
        };
        let avg = session_auc(&[s1, s2, skip]).unwrap();
        assert!((avg - 0.5).abs() < 1e-12);
        assert!(session_auc(&[]).is_none());
    }
}
