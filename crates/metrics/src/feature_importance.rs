//! Feature importance (paper Eq. 1): the mean per-session ROC-AUC of
//! ranking by a single raw feature against the purchase label.

use amoe_dataset::{Split, N_NUMERIC};

use crate::auc::roc_auc;

/// Computes `FI(f)` (Eq. 1) for numeric feature `feature_idx` over the
/// sessions of `split`, optionally restricted to sessions whose items
/// belong to `tc_filter` / `sc_filter` (true categories).
///
/// Sessions without both label classes are skipped, matching the AUC
/// convention. Returns `None` when no session qualifies.
#[must_use]
pub fn feature_importance(
    split: &Split,
    feature_idx: usize,
    tc_filter: Option<usize>,
    sc_filter: Option<usize>,
) -> Option<f64> {
    assert!(
        feature_idx < N_NUMERIC,
        "feature_importance: feature {feature_idx} out of {N_NUMERIC}"
    );
    let mut total = 0.0;
    let mut n = 0usize;
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for r in &split.sessions {
        scores.clear();
        labels.clear();
        for e in &split.examples[r.clone()] {
            if let Some(tc) = tc_filter {
                if e.true_tc != tc {
                    continue;
                }
            }
            if let Some(sc) = sc_filter {
                if e.true_sc != sc {
                    continue;
                }
            }
            scores.push(e.numeric[feature_idx]);
            labels.push(e.label);
        }
        if scores.len() < 2 {
            continue;
        }
        if let Some(a) = roc_auc(&scores, &labels) {
            total += a;
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_dataset::{generate, GeneratorConfig};

    #[test]
    fn informative_feature_beats_half() {
        // sales_volume (index 1) carries strong positive ground-truth
        // weight in most categories, so its FI must exceed 0.5 overall.
        let d = generate(&GeneratorConfig::tiny(5));
        let fi = feature_importance(&d.train, 1, None, None).unwrap();
        assert!(fi > 0.52, "FI(sales_volume) = {fi}");
    }

    #[test]
    fn negative_weight_feature_below_half() {
        // price (index 0) has negative ground-truth weight everywhere.
        let d = generate(&GeneratorConfig::tiny(6));
        let fi = feature_importance(&d.train, 0, None, None).unwrap();
        assert!(fi < 0.5, "FI(price) = {fi}");
    }

    #[test]
    fn filters_restrict_sessions() {
        let d = generate(&GeneratorConfig::tiny(7));
        // A TC with no sessions yields None.
        let empty_tc =
            (0..d.hierarchy.num_tc()).find(|&tc| d.train.examples.iter().all(|e| e.true_tc != tc));
        if let Some(tc) = empty_tc {
            assert!(feature_importance(&d.train, 1, Some(tc), None).is_none());
        }
        // An existing TC yields a defined value.
        let tc0 = d.train.examples[0].true_tc;
        assert!(feature_importance(&d.train, 1, Some(tc0), None).is_some());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_feature_index_panics() {
        let d = generate(&GeneratorConfig::tiny(8));
        let _ = feature_importance(&d.train, N_NUMERIC, None, None);
    }
}
