//! End-to-end tests of the request-tracing and windowed-telemetry
//! pipeline added in the observability PR:
//!
//! - a traced request must leave the **full stage chain** (admitted →
//!   enqueued → queue_exit → batch_assembled → reply_written, plus the
//!   compute-side gate/expert/scatter events of its batch) with
//!   causally monotone timestamps, and the `TRACE_DUMP` export must
//!   round-trip through the same Chrome-trace validator CI uses;
//! - windowed STATS quantiles must agree with an exact-sort oracle
//!   within the log-bucket error bound `2^(1/4)`;
//! - scores must stay **bit-identical** with tracing on at any sample
//!   rate — telemetry may never perturb the model;
//! - a protocol-v1 client (hand-rolled frames, no trace id, no
//!   windowed stats) must interoperate with the v2 server.
//!
//! The trace ring, its enable gate and the sample rate are process
//! globals, so every test that touches them runs under one mutex.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use adv_hsc_moe::dataset::{generate, Batch, Dataset, GeneratorConfig};
use adv_hsc_moe::moe::config::TowerConfig;
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel};
use adv_hsc_moe::obs::json::{parse, Value};
use adv_hsc_moe::obs::registry::SUB_BUCKETS;
use adv_hsc_moe::obs::{trace, WindowedHistogram};
use adv_hsc_moe::serve::{Client, FeatureRow, QuantileSummary, ServeConfig, Server};
use amoe_bench::obs_check::validate_chrome_trace;

/// Serialises tests that mutate the global trace state (enable gate,
/// sample rate, ring contents).
static TRACE_STATE: Mutex<()> = Mutex::new(());

fn trained_model(seed: u64, steps: usize) -> (Dataset, MoeModel) {
    let d = generate(&GeneratorConfig::tiny(41));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        seed,
        ..MoeConfig::default()
    };
    let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..steps {
        m.train_step(&batch);
    }
    (d, m)
}

fn feature_rows(d: &Dataset, range: std::ops::Range<usize>) -> Vec<FeatureRow> {
    d.test.examples[range]
        .iter()
        .map(|e| FeatureRow {
            sc: e.pred_sc as u32,
            tc: e.pred_tc as u32,
            brand: e.brand as u32,
            shop: e.shop as u32,
            user_segment: e.user_segment as u32,
            price_bucket: e.price_bucket as u32,
            query: e.query,
            numeric: e.numeric.to_vec(),
        })
        .collect()
}

/// Finds the start timestamp (µs) of `stage` among `events` filtered
/// by a numeric `args` field equal to `key`.
fn stage_ts(events: &[Value], field: &str, key: f64, stage: &str) -> Option<f64> {
    events
        .iter()
        .find(|e| {
            e.get("name").and_then(Value::as_str) == Some(stage)
                && e.get("args")
                    .and_then(|a| a.get(field))
                    .and_then(Value::as_f64)
                    == Some(key)
        })
        .and_then(|e| e.get("ts").and_then(Value::as_f64))
}

/// A traced request leaves the full stage chain with causally monotone
/// timestamps, and the `TRACE_DUMP` export passes the CI validator.
#[test]
fn traced_request_emits_full_stage_chain() {
    let _guard = TRACE_STATE.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    trace::set_sample(1);
    trace::reset();

    let (d, model) = trained_model(901, 5);
    let server = Server::start("127.0.0.1:0", model, d.meta.clone(), ServeConfig::default())
        .expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client.negotiated_version() >= 2, "expected protocol v2");

    let rows = feature_rows(&d, 0..8);
    for _ in 0..6 {
        client.score(&rows).expect("score");
    }
    const TRACE_ID: u64 = 0xE2E;
    client.score_traced(&rows, TRACE_ID).expect("score_traced");

    // The dump must round-trip through the validator CI uses.
    let dump = client.trace_dump().expect("trace_dump");
    let n = validate_chrome_trace(&dump).expect("chrome trace contract");
    assert!(n > 0, "tracing on but dump is empty");

    let doc = parse(&dump).expect("dump parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents")
        .to_vec();

    // Request-scoped chain, in causal order. Events live on different
    // threads (connection vs batcher) but share one clock anchor, so
    // the start timestamps must be non-decreasing along the chain.
    let id = TRACE_ID as f64;
    let mut prev = f64::NEG_INFINITY;
    for stage in [
        "admitted",
        "enqueued",
        "queue_exit",
        "batch_assembled",
        "reply_written",
    ] {
        let ts = stage_ts(&events, "trace_id", id, stage)
            .unwrap_or_else(|| panic!("trace id {TRACE_ID:#x} has no '{stage}' event"));
        assert!(
            ts >= prev,
            "'{stage}' ts {ts} precedes the previous stage ({prev})"
        );
        prev = ts;
    }

    // The batch that carried the request must have compute-side
    // events tagged with its id, all between assembly and reply.
    let assembled = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Value::as_str) == Some("batch_assembled")
                && e.get("args")
                    .and_then(|a| a.get("trace_id"))
                    .and_then(Value::as_f64)
                    == Some(id)
        })
        .expect("batch_assembled event");
    let batch_id = assembled
        .get("args")
        .and_then(|a| a.get("batch_id"))
        .and_then(Value::as_f64)
        .expect("batch id");
    assert!(batch_id > 0.0, "batch_assembled carries no batch id");
    for stage in ["gate", "expert", "scatter"] {
        let ts = stage_ts(&events, "batch_id", batch_id, stage)
            .unwrap_or_else(|| panic!("batch {batch_id} has no '{stage}' event"));
        assert!(ts >= 0.0);
    }

    // Windowed stats are live on the same connection: every score
    // request of THIS server landed in the always-on windows.
    let (snapshot, window) = client.stats_full().expect("stats");
    let w = window.expect("v2 stats must carry the windowed block");
    assert_eq!(snapshot.ok, 7);
    assert_eq!(w.request_latency_us.count, 7);
    assert_eq!(w.queue_wait_us.count, 7);
    assert_eq!(w.reply_write_us.count, 7);
    assert!(w.compute_us.count >= 1, "at least one batch computed");
    assert!(
        w.request_latency_us.p50 <= w.request_latency_us.p95
            && w.request_latency_us.p95 <= w.request_latency_us.p99,
        "quantiles must be ordered"
    );
    assert!(w.window_secs > 0.0);

    client.shutdown().expect("shutdown");
    server.join();
    trace::set_enabled(false);
    trace::reset();
}

/// Windowed p50/p95/p99 agree with an exact-sort oracle within the
/// log-bucket error bound: `truth ≤ estimate ≤ truth · 2^(1/4)`.
/// Seeded xorshift stream; covers the single-bucket and empty edges.
#[test]
fn windowed_quantiles_agree_with_exact_oracle() {
    let factor = 2f64.powf(1.0 / SUB_BUCKETS as f64);
    // Exact oracle with the histogram's rank rule (1-based ceil).
    let oracle = |sorted: &[f64], q: f64| {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    };

    let mut state = 0x9E37_79B9_7F4A_7C15u64; // fixed seed
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for trial in 0..20 {
        let n = 1 + (next() % 400) as usize;
        let mut w = WindowedHistogram::with_defaults();
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            // Latency-like magnitudes, ≥ 1 so the relative bound of
            // the log buckets applies (bucket 0 is absolute [0, 1)).
            let v = 1.0 + (next() % 1_000_000) as f64 / 7.0;
            values.push(v);
            w.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = QuantileSummary::from_histogram(&w.merged());
        assert_eq!(s.count, n as u64, "trial {trial}");
        for (q, est) in [(0.5, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            let truth = oracle(&values, q);
            assert!(
                est >= truth * (1.0 - 1e-9) && est <= truth * factor * (1.0 + 1e-9),
                "trial {trial}: q={q} estimate {est} outside \
                 [{truth}, {truth} · {factor}]"
            );
        }
    }

    // Single-bucket edge: identical samples read back exactly (the
    // estimate clamps to the observed min == max).
    let mut w = WindowedHistogram::with_defaults();
    for _ in 0..32 {
        w.record(1234.5);
    }
    let s = QuantileSummary::from_histogram(&w.merged());
    assert_eq!((s.p50, s.p95, s.p99), (1234.5, 1234.5, 1234.5));

    // Empty edge: count 0, all quantiles 0.
    let s = QuantileSummary::from_histogram(&WindowedHistogram::with_defaults().merged());
    assert_eq!(s, QuantileSummary::default());
}

/// Tracing must be a pure observer: scores stay bit-identical to
/// direct in-process predict with tracing off, and with tracing on at
/// every sample rate.
#[test]
fn scores_bit_identical_with_tracing_on_at_any_sample_rate() {
    let _guard = TRACE_STATE.lock().unwrap_or_else(|e| e.into_inner());

    let (d, model) = trained_model(902, 8);
    let idx: Vec<usize> = (0..25).collect();
    let expected = ServingMoe::new(&model).predict(&Batch::from_split(&d.test, &idx));
    let rows = feature_rows(&d, 0..25);

    // (enabled, sample rate): off, every request, 1-in-4, 1-in-16.
    for (on, sample) in [(false, 1u64), (true, 1), (true, 4), (true, 16)] {
        trace::set_enabled(on);
        trace::set_sample(sample);
        trace::reset();
        let (d, model) = trained_model(902, 8);
        let server = Server::start("127.0.0.1:0", model, d.meta.clone(), ServeConfig::default())
            .expect("server start");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let got = client.score(&rows).expect("score");
        assert_eq!(
            got, expected,
            "tracing on={on} sample=1/{sample}: scores diverged from direct predict"
        );
        client.shutdown().expect("shutdown");
        server.join();
    }
    trace::set_enabled(false);
    trace::reset();
}

/// A protocol-v1 client — hand-rolled hello and frames, no trace ids,
/// no windowed stats — interoperates with the v2 server: negotiation
/// answers version 1, scores are bit-identical, and the STATS reply is
/// the exact v1 body with no trailing windowed block.
#[test]
fn v1_client_interoperates_with_v2_server() {
    let _guard = TRACE_STATE.lock().unwrap_or_else(|e| e.into_inner());

    let (d, model) = trained_model(903, 8);
    let idx: Vec<usize> = (0..5).collect();
    let expected = ServingMoe::new(&model).predict(&Batch::from_split(&d.test, &idx));
    let rows = feature_rows(&d, 0..5);

    let server = Server::start(
        "127.0.0.1:0",
        model,
        d.meta.clone(),
        ServeConfig {
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .expect("server start");

    let mut s = TcpStream::connect(server.local_addr()).expect("connect");

    // v1 hello: magic + version 1. The server must answer version 1.
    s.write_all(b"AMSV").expect("hello magic");
    s.write_all(&1u32.to_le_bytes()).expect("hello version");
    let mut hello = [0u8; 8];
    s.read_exact(&mut hello).expect("hello reply");
    assert_eq!(&hello[..4], b"AMSV");
    assert_eq!(u32::from_le_bytes(hello[4..8].try_into().unwrap()), 1);

    let write_frame = |s: &mut TcpStream, payload: &[u8]| {
        s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        s.write_all(payload).unwrap();
    };
    let read_frame = |s: &mut TcpStream| -> Vec<u8> {
        let mut len = [0u8; 4];
        s.read_exact(&mut len).unwrap();
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        s.read_exact(&mut payload).unwrap();
        payload
    };

    // v1 SCORE frame: tag 0x01, request id, row count, numeric width,
    // then 7 ids + numerics per row. No trace id anywhere.
    let mut req = vec![0x01u8];
    req.extend_from_slice(&7u64.to_le_bytes());
    req.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    req.extend_from_slice(&(rows[0].numeric.len() as u32).to_le_bytes());
    for r in &rows {
        for id in [
            r.sc,
            r.tc,
            r.brand,
            r.shop,
            r.user_segment,
            r.price_bucket,
            r.query,
        ] {
            req.extend_from_slice(&id.to_le_bytes());
        }
        for &v in &r.numeric {
            req.extend_from_slice(&v.to_le_bytes());
        }
    }
    write_frame(&mut s, &req);
    let reply = read_frame(&mut s);
    assert_eq!(reply[0], 0x81, "expected SCORES tag");
    assert_eq!(u64::from_le_bytes(reply[1..9].try_into().unwrap()), 7);
    let n = u32::from_le_bytes(reply[9..13].try_into().unwrap()) as usize;
    assert_eq!(n, rows.len());
    let scores: Vec<f32> = reply[13..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(
        scores, expected,
        "v1 client scores diverged from direct predict"
    );

    // v1 STATS: the reply must use the v1 tag and the exact v1 body
    // length — a trailing windowed block would break old decoders.
    write_frame(&mut s, &[0x04]);
    let reply = read_frame(&mut s);
    assert_eq!(reply[0], 0x85, "expected v1 STATS_REPLY tag");
    assert_eq!(
        reply.len(),
        1 + 8 * 8,
        "v1 STATS reply must carry exactly the 8 v1 counters"
    );
    let ok = u64::from_le_bytes(reply[1 + 16..1 + 24].try_into().unwrap());
    assert_eq!(ok, 1, "the v1 score request must be counted");

    // v1 SHUTDOWN: tag 0x03, expect OK (0x84).
    write_frame(&mut s, &[0x03]);
    let reply = read_frame(&mut s);
    assert_eq!(reply, [0x84], "expected OK reply to shutdown");
    server.join();
}
