//! End-to-end test of the continuous train→reload loop over loopback
//! TCP: a server boots from a frozen seed checkpoint, an
//! [`OnlineLoop`] consumes the drifting stream, probes the server
//! every tick, and refits/exports/RELOADs on its cadence. The
//! acceptance contract from the online subsystem:
//!
//! * at least three automatic drift-driven refit/RELOAD cycles land;
//! * the server stays continuously available — every admitted probe
//!   is answered, zero failed requests, zero `OVERLOADED` sheds at
//!   this offered load;
//! * after the reloads, the server's scores are bit-identical to the
//!   loop's in-process model (the export→reload→serve path preserves
//!   the weights exactly);
//! * the refreshed model's windowed AUC beats the frozen seed model's
//!   over the post-first-swap windows (the loop is not just alive, it
//!   is *worth running*).

use adv_hsc_moe::dataset::{generate, Batch, DriftConfig, GeneratorConfig, Split};
use adv_hsc_moe::metrics::roc_auc;
use adv_hsc_moe::moe::config::TowerConfig;
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, TrainConfig, Trainer};
use adv_hsc_moe::online::daemon::feature_row;
use adv_hsc_moe::online::{OnlineConfig, OnlineLoop};
use adv_hsc_moe::serve::{Client, ServeConfig, Server};

fn model_config(seed: u64) -> MoeConfig {
    MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        seed,
        ..MoeConfig::default()
    }
}

fn window_auc(trainer: &Trainer, model: &dyn Ranker, split: &Split) -> Option<f64> {
    let scores = trainer.score_split(model, split);
    let labels: Vec<bool> = split.examples.iter().map(|e| e.label).collect();
    roc_auc(&scores, &labels)
}

#[test]
fn continuous_loop_survives_three_reload_cycles_and_beats_frozen() {
    let seed = 41u64;
    let base = GeneratorConfig::tiny(seed);
    let drift = DriftConfig {
        emerging_boost: 4.0,
        brand_shift_per_tick: 0.12,
        season_amplitude: 1.3,
        ..DriftConfig::default()
    };

    // Frozen deployment: trained once on the static snapshot.
    let dataset = generate(&base);
    let trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        verbose: false,
        ..TrainConfig::default()
    });
    let mut frozen = MoeModel::new(&dataset.meta, model_config(seed), OptimConfig::default());
    trainer.fit(&mut frozen, &dataset.train);

    let export_dir = std::env::temp_dir().join(format!("amoe-online-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&export_dir);
    std::fs::create_dir_all(&export_dir).expect("export dir");
    let seed_ckpt = export_dir.join("gen-000000.amoe");
    frozen
        .params()
        .save_atomic(&seed_ckpt)
        .expect("seed export");

    let boot = MoeModel::from_checkpoint(
        &dataset.meta,
        model_config(seed),
        OptimConfig::default(),
        &seed_ckpt,
    )
    .expect("boot model");
    let server = Server::start(
        "127.0.0.1:0",
        boot,
        dataset.meta.clone(),
        ServeConfig::default(),
    )
    .expect("server start");
    let addr = server.local_addr();

    let mut config = OnlineConfig::demo(base, &export_dir);
    config.drift = drift;
    config.sessions_per_tick = 16;
    config.refit_every = 3;
    config.refit_epochs = 2;
    config.model = model_config(seed);
    config.seed_checkpoint = Some(seed_ckpt);
    config.serve_addr = Some(addr.to_string());
    config.probe_rows = 16;
    let mut lp = OnlineLoop::new(config).expect("loop");
    lp.connect().expect("connect");

    let ticks = 9u64;
    let mut frozen_aucs = Vec::new();
    let mut fresh_aucs = Vec::new();
    for tick in 0..ticks {
        let window = lp.stream().window_at(tick);
        let gen_before = lp.generation();
        let f = window_auc(&trainer, &frozen, &window.split);
        let g = window_auc(&trainer, lp.model(), &window.split);
        let report = lp.step().expect("tick must not fail");
        assert_eq!(report.tick, tick);
        assert!(report.probe_rows > 0, "every tick probes the server");
        if gen_before > 0 {
            if let (Some(f), Some(g)) = (f, g) {
                frozen_aucs.push(f);
                fresh_aucs.push(g);
            }
        }
    }

    // ≥ 3 automatic refit/RELOAD cycles, continuous availability.
    let stats = lp.stats();
    assert_eq!(stats.ticks, ticks);
    assert_eq!(stats.refits, 3, "refit every 3 ticks over 9 ticks");
    assert_eq!(stats.reloads, 3, "every refit deploys");
    assert_eq!(stats.failed, 0, "every admitted request answered");
    assert_eq!(
        stats.probes_overloaded, 0,
        "no OVERLOADED shedding at this offered load"
    );
    assert_eq!(stats.probes_ok, ticks, "one successful probe per tick");
    assert_eq!(lp.generation(), 3);

    // The server agrees it swapped three times, and now serves exactly
    // the loop's latest weights: TCP scores bit-identical to direct
    // in-process predict on `lp.model()`.
    let mut admin = Client::connect(addr).expect("admin connect");
    let snapshot = admin.stats().expect("stats");
    assert_eq!(snapshot.reloads, 3, "server-side reload counter");
    assert_eq!(snapshot.errors, 0, "no server-side request errors");

    let window = lp.stream().window_at(ticks);
    let n = window.split.len().min(64);
    let rows: Vec<_> = window.split.examples[..n].iter().map(feature_row).collect();
    let batch = Batch::from_split(&window.split, &(0..n).collect::<Vec<_>>());
    let direct = ServingMoe::new(lp.model()).predict(&batch);
    let via_tcp = admin.score(&rows).expect("score");
    assert_eq!(
        via_tcp, direct,
        "served weights must equal exported weights"
    );

    // The loop must be worth running: refreshed model beats the frozen
    // seed on the drifted windows it was refit for.
    assert!(
        frozen_aucs.len() >= 4,
        "expected several comparable post-swap windows, got {}",
        frozen_aucs.len()
    );
    let frozen_mean = frozen_aucs.iter().sum::<f64>() / frozen_aucs.len() as f64;
    let fresh_mean = fresh_aucs.iter().sum::<f64>() / fresh_aucs.len() as f64;
    assert!(
        fresh_mean > frozen_mean,
        "staleness margin must be positive: fresh {fresh_mean:.4} vs frozen {frozen_mean:.4}"
    );

    admin.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&export_dir);
}

#[test]
fn offline_loop_exports_are_reloadable_by_a_live_server() {
    // The offline daemon (no server attached) must still produce
    // exports any server can hot-swap to — the bench relies on this.
    let base = GeneratorConfig::tiny(41);
    let dataset = generate(&base);
    let export_dir =
        std::env::temp_dir().join(format!("amoe-online-export-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&export_dir);

    let mut config = OnlineConfig::demo(base, &export_dir);
    config.sessions_per_tick = 8;
    config.refit_every = 2;
    config.refit_epochs = 1;
    config.model = model_config(41);
    let mut lp = OnlineLoop::new(config).expect("loop");
    let reports = lp.run(2).expect("run");
    let refit = reports[1].refit.as_ref().expect("refit on tick 1");

    let boot = MoeModel::new(&dataset.meta, model_config(41), OptimConfig::default());
    let server = Server::start(
        "127.0.0.1:0",
        boot,
        dataset.meta.clone(),
        ServeConfig::default(),
    )
    .expect("server start");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .reload(refit.export_path.to_str().expect("utf8 path"))
        .expect("reload of offline export");

    // Served scores now match the offline loop's in-process model.
    let window = lp.stream().window_at(5);
    let n = window.split.len().min(32);
    let rows: Vec<_> = window.split.examples[..n].iter().map(feature_row).collect();
    let batch = Batch::from_split(&window.split, &(0..n).collect::<Vec<_>>());
    let direct = ServingMoe::new(lp.model()).predict(&batch);
    assert_eq!(client.score(&rows).expect("score"), direct);

    client.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&export_dir);
}
