//! End-to-end integration tests: dataset → training → evaluation →
//! checkpointing → serving, across crate boundaries.

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{DnnModel, MmoeModel, MoeConfig, MoeModel, Ranker, TrainConfig, Trainer};
use adv_hsc_moe::nn::ParamSet;
use adv_hsc_moe::tensor::check::assert_close_rel;

fn small_data(seed: u64) -> adv_hsc_moe::dataset::Dataset {
    generate(&GeneratorConfig {
        seed,
        train_sessions: 600,
        test_sessions: 150,
        ..GeneratorConfig::default()
    })
}

fn small_cfg() -> MoeConfig {
    MoeConfig {
        n_experts: 6,
        top_k: 2,
        ..MoeConfig::default()
    }
}

fn trainer() -> Trainer {
    Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 256,
        ..TrainConfig::default()
    })
}

#[test]
fn every_model_beats_chance_end_to_end() {
    let data = small_data(1);
    let t = trainer();
    let optim = OptimConfig::default();

    let mut models: Vec<Box<dyn Ranker>> = vec![
        Box::new(DnnModel::new(&data.meta, &small_cfg(), optim)),
        Box::new(MoeModel::new(&data.meta, small_cfg(), optim)),
        Box::new(MoeModel::new(
            &data.meta,
            MoeConfig {
                adversarial: true,
                hsc: true,
                ..small_cfg()
            },
            optim,
        )),
        Box::new(MmoeModel::new(
            &data.meta,
            &small_cfg(),
            4,
            adv_hsc_moe::dataset::buckets::equal_count_task_buckets(
                &data.train,
                data.hierarchy.num_tc(),
                4,
            ),
            optim,
        )),
    ];
    for model in &mut models {
        t.fit(model.as_mut(), &data.train);
        let r = t.evaluate(model.as_ref(), &data.test);
        assert!(
            r.auc > 0.6,
            "{} end-to-end AUC {:.4} too low",
            model.name(),
            r.auc
        );
        assert!(
            r.log_loss < 0.6,
            "{} log-loss {:.3}",
            model.name(),
            r.log_loss
        );
    }
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let data = small_data(2);
    let t = trainer();
    let mut model = MoeModel::new(
        &data.meta,
        MoeConfig {
            adversarial: true,
            hsc: true,
            ..small_cfg()
        },
        OptimConfig::default(),
    );
    t.fit(&mut model, &data.train);
    let batch = Batch::from_split(&data.test, &(0..64).collect::<Vec<_>>());
    let before = model.predict(&batch);

    let path = std::env::temp_dir().join(format!("amoe_e2e_{}.ckpt", std::process::id()));
    model.params().save(&path).unwrap();

    // A freshly initialised model predicts differently; after restoring
    // the checkpoint it must agree bit-for-bit.
    let mut fresh = MoeModel::new(
        &data.meta,
        MoeConfig {
            adversarial: true,
            hsc: true,
            ..small_cfg()
        },
        OptimConfig::default(),
    );
    assert_ne!(before, fresh.predict(&batch));
    let loaded = ParamSet::load(&path).unwrap();
    fresh.params_mut().load_values_from(&loaded).unwrap();
    assert_eq!(before, fresh.predict(&batch));
    std::fs::remove_file(&path).ok();
}

#[test]
fn serving_path_agrees_after_training() {
    let data = small_data(3);
    let t = trainer();
    let mut model = MoeModel::new(&data.meta, small_cfg(), OptimConfig::default());
    t.fit(&mut model, &data.train);
    let batch = Batch::from_split(&data.test, &(0..100).collect::<Vec<_>>());
    let dense = model.predict(&batch);
    let sparse = ServingMoe::new(&model).predict(&batch);
    for (i, (&a, &b)) in dense.iter().zip(&sparse).enumerate() {
        assert_close_rel(a, b, 0.0, 1e-5, &format!("example {i} (dense vs serving)"));
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let run = || {
        let data = small_data(4);
        let t = trainer();
        let mut model = MoeModel::new(
            &data.meta,
            MoeConfig {
                adversarial: true,
                hsc: true,
                seed: 7,
                ..small_cfg()
            },
            OptimConfig::default(),
        );
        t.fit(&mut model, &data.train);
        let batch = Batch::from_split(&data.test, &(0..32).collect::<Vec<_>>());
        model.predict(&batch)
    };
    assert_eq!(run(), run(), "same seeds must give identical models");
}

#[test]
fn different_model_seeds_give_different_models() {
    let data = small_data(5);
    let t = trainer();
    let predict_with = |seed: u64| {
        let mut model = MoeModel::new(
            &data.meta,
            MoeConfig {
                seed,
                ..small_cfg()
            },
            OptimConfig::default(),
        );
        t.fit(&mut model, &data.train);
        let batch = Batch::from_split(&data.test, &(0..32).collect::<Vec<_>>());
        model.predict(&batch)
    };
    assert_ne!(predict_with(1), predict_with(2));
}

#[test]
fn semi_oracle_upper_bounds_trained_models() {
    // The generating weights applied to observed features should beat
    // any model trained from scratch on this few examples.
    let data = small_data(6);
    let t = trainer();
    let mut model = MoeModel::new(&data.meta, small_cfg(), OptimConfig::default());
    t.fit(&mut model, &data.train);
    let trained = t.evaluate(&model, &data.test);

    let oracle_scores: Vec<f32> = data
        .test
        .examples
        .iter()
        .map(|e| {
            data.truth
                .logit(e.true_sc, &e.numeric, data.brands.quality(e.brand))
        })
        .collect();
    let oracle = adv_hsc_moe::moe::trainer::evaluate_scores(&oracle_scores, &data.test);
    assert!(
        oracle.auc > trained.auc,
        "oracle {:.4} should exceed trained {:.4}",
        oracle.auc,
        trained.auc
    );
}
