//! Kernel oracle: the cache-blocked packed GEMM kernels and the int8
//! quantized serving kernel, proven against naive 3-loop references.
//!
//! The f32 kernels promise **exact** results — every output element
//! accumulates its products in ascending `p` order, one rounding per
//! mul/add, regardless of blocking, packing, or thread count — so the
//! comparisons here are `==`, not tolerances. The quantized kernel is
//! bit-identical to running the f32 kernel on the dequantized weights;
//! its only approximation versus full precision is the quantization
//! round-trip, bounded per element by `0.5 · scale_j · ‖a_i‖₁`.
//!
//! Shapes are both randomized (seeded [`Checker`] properties, replayable
//! via `AMOE_CHECK_SEED`) and adversarial: row/column vectors,
//! non-tile-multiple dims, `KC`-crossing depths, and the zero-dim
//! constructions that [`Matrix`] must reject.
//!
//! The thread pool budget is process-global, so sweeping it here could
//! race with concurrently running tests in this binary — that is safe
//! precisely because of the invariant under test: results do not depend
//! on the thread count.

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::config::TowerConfig;
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::{QuantizedExperts, ServingMoe, QUANT_SCORE_TOLERANCE};
use adv_hsc_moe::moe::{MoeConfig, MoeModel};
use adv_hsc_moe::tensor::check::{self, Checker};
use adv_hsc_moe::tensor::matmul::{self, reference, KC, MR, NR, PAR_FLOP_THRESHOLD};
use adv_hsc_moe::tensor::matrix::MatrixError;
use adv_hsc_moe::tensor::quant::{matmul_nt_q, QuantMatrix};
use adv_hsc_moe::tensor::{pool, Matrix, Rng};

/// Compares all three transpose flavours against their oracles for one
/// `(m, k, n)` shape, with exact equality.
fn assert_all_flavours_exact(rng: &mut Rng, m: usize, k: usize, n: usize, label: &str) {
    let a = check::matrix(rng, m, k, 2.0);
    let b = check::matrix(rng, k, n, 2.0);
    assert_eq!(
        matmul::matmul(&a, &b),
        reference::matmul(&a, &b),
        "{label}: nn diverged at {m}x{k}x{n}"
    );
    let at = check::matrix(rng, k, m, 2.0);
    assert_eq!(
        matmul::matmul_tn(&at, &b),
        reference::matmul_tn(&at, &b),
        "{label}: tn diverged at {m}x{k}x{n}"
    );
    let bt = check::matrix(rng, n, k, 2.0);
    assert_eq!(
        matmul::matmul_nt(&a, &bt),
        reference::matmul_nt(&a, &bt),
        "{label}: nt diverged at {m}x{k}x{n}"
    );
}

#[test]
fn blocked_kernels_match_oracle_on_random_shapes() {
    // Dims up to 24 straddle PACK_FLOP_THRESHOLD (2^13), so cases land
    // on both the packed blocked path and the naive fallback.
    Checker::new("blocked_kernels_match_oracle")
        .cases(64)
        .run(|rng| {
            let (m, k) = check::dims(rng, 1, 24);
            let (n, _) = check::dims(rng, 1, 24);
            assert_all_flavours_exact(rng, m, k, n, "random");
            Ok(())
        });
}

#[test]
fn blocked_kernels_match_oracle_on_adversarial_shapes() {
    let mut rng = Rng::seed_from(0xFEED);
    let shapes: &[(usize, usize, usize)] = &[
        // Row and column vectors: m = 1 never packs, n = 1 leaves every
        // B strip almost entirely zero padding.
        (1, 64, 32),
        (64, 32, 1),
        (1, 1, 1),
        // Exactly one tile, and one-off from tile multiples in every
        // direction (tile edges are where pack/loop bounds break).
        (MR, KC, NR),
        (MR - 1, KC - 1, NR - 1),
        (MR + 1, KC + 1, NR + 1),
        (MR * 3 - 1, KC - 1, NR * 2 + 3),
        // KC-crossing depths: k spanning 2 and 3 p-blocks, including the
        // exact boundary.
        (8, KC, NR * 2),
        (8, KC + 1, NR * 2),
        (8, 2 * KC + 1, NR),
        (12, 300, 24),
        // Flat-but-wide and tall-but-thin extremes.
        (2, 7, 200),
        (200, 7, 2),
    ];
    for &(m, k, n) in shapes {
        assert_all_flavours_exact(&mut rng, m, k, n, "adversarial");
    }
}

#[test]
fn blocked_kernels_bit_identical_across_thread_counts() {
    // Above PAR_FLOP_THRESHOLD with a KC-crossing depth, so the parallel
    // row-blocked path actually engages and p-blocking is exercised.
    let (m, k, n) = (48, 300, 32);
    assert!(m * k * n >= PAR_FLOP_THRESHOLD);
    let mut rng = Rng::seed_from(0xBEEF);
    let a = check::matrix(&mut rng, m, k, 2.0);
    let b = check::matrix(&mut rng, k, n, 2.0);
    let at = check::matrix(&mut rng, k, m, 2.0);
    let bt = check::matrix(&mut rng, n, k, 2.0);
    let oracle = (
        reference::matmul(&a, &b),
        reference::matmul_tn(&at, &b),
        reference::matmul_nt(&a, &bt),
    );
    for threads in [1usize, 2, 4, 8] {
        pool::set_threads(threads);
        assert_eq!(
            matmul::matmul(&a, &b),
            oracle.0,
            "nn diverged from oracle at {threads} threads"
        );
        assert_eq!(
            matmul::matmul_tn(&at, &b),
            oracle.1,
            "tn diverged from oracle at {threads} threads"
        );
        assert_eq!(
            matmul::matmul_nt(&a, &bt),
            oracle.2,
            "nt diverged from oracle at {threads} threads"
        );
    }
    pool::clear_threads_override();
}

#[test]
fn empty_matrices_are_rejected_at_construction() {
    // The kernels never see degenerate shapes because Matrix refuses to
    // build them: a zero dimension is a constructor error, not a kernel
    // edge case.
    for (rows, cols) in [(0usize, 5usize), (5, 0), (0, 0)] {
        match Matrix::try_from_vec(rows, cols, vec![]) {
            Err(MatrixError::EmptyDimension { rows: r, cols: c }) => {
                assert_eq!((r, c), (rows, cols));
            }
            other => panic!("{rows}x{cols} must be rejected as empty, got {other:?}"),
        }
    }
}

#[test]
fn quantization_roundtrip_error_within_half_scale() {
    Checker::new("quant_roundtrip_half_scale")
        .cases(64)
        .run(|rng| {
            let (rows, cols) = check::dims(rng, 1, 32);
            let w = check::matrix(rng, rows, cols, 3.0);
            let q = QuantMatrix::quantize_rows(&w);
            let back = q.dequantize();
            for r in 0..rows {
                let scale = q.scales()[r];
                check::ensure(
                    q.row(r).iter().all(|&c| (-127..=127).contains(&c)),
                    format!("row {r}: code outside [-127, 127]"),
                )?;
                for (j, (&orig, &deq)) in w.row(r).iter().zip(back.row(r)).enumerate() {
                    check::ensure(
                        (orig - deq).abs() <= 0.5 * scale + 1e-6,
                        format!(
                            "round-trip error at ({r},{j}): {orig} vs {deq} exceeds scale/2 = {}",
                            0.5 * scale
                        ),
                    )?;
                }
            }
            Ok(())
        });
}

#[test]
fn quant_kernel_exact_vs_dequantized_oracle_and_bounded_vs_f32() {
    Checker::new("quant_kernel_oracle").cases(48).run(|rng| {
        let (m, k) = check::dims(rng, 1, 24);
        let (n, _) = check::dims(rng, 1, 24);
        let a = check::matrix(rng, m, k, 2.0);
        let w = check::matrix(rng, n, k, 2.0);
        let q = QuantMatrix::quantize_rows(&w);

        // Exact contract: the quantized kernel IS the f32 kernel run on
        // the dequantized weights, bit for bit, on every dispatch path.
        let got = matmul_nt_q(&a, &q);
        check::ensure(
            got == reference::matmul_nt(&a, &q.dequantize()),
            format!("quant kernel diverged from dequantized oracle at {m}x{k}x{n}"),
        )?;

        // Approximation contract versus the full-precision product:
        // |ΔC[i][j]| ≤ 0.5 · scale_j · ‖a_i‖₁, plus f32 accumulation
        // slack (both chains round k times on values of similar size).
        let exact = reference::matmul_nt(&a, &w);
        for i in 0..m {
            let l1: f32 = a.row(i).iter().map(|v| v.abs()).sum();
            for j in 0..n {
                let bound = 0.5 * q.scales()[j] * l1 + 1e-4 * l1 + 1e-5;
                let diff = (got[(i, j)] - exact[(i, j)]).abs();
                check::ensure(
                    diff <= bound,
                    format!("quant error {diff} exceeds bound {bound} at ({i},{j}) of {m}x{k}x{n}"),
                )?;
            }
        }
        Ok(())
    });
}

#[test]
fn quantized_serving_predict_within_tolerance_across_thread_counts() {
    // End to end: a trained model served with int8 expert weights must
    // score within the documented tolerance of the f32 path, and the
    // quantized scores themselves must be bit-identical for every
    // thread budget.
    let d = generate(&GeneratorConfig::tiny(53));
    let mut model = MoeModel::new(
        &d.meta,
        MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: TowerConfig {
                hidden: vec![12, 6],
            },
            ..MoeConfig::adv_hsc_moe()
        },
        OptimConfig::default(),
    );
    let train_batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..8 {
        model.train_step(&train_batch);
    }
    let quant = QuantizedExperts::from_model(&model);
    let batch = Batch::from_split(&d.test, &(0..64).collect::<Vec<_>>());
    let f32_scores = ServingMoe::new(&model).predict(&batch);

    let mut per_thread = Vec::new();
    for threads in [1usize, 2, 4] {
        pool::set_threads(threads);
        let scores = ServingMoe::with_quantized(&model, &quant).predict(&batch);
        assert_eq!(scores.len(), f32_scores.len());
        for (i, (&qs, &fs)) in scores.iter().zip(&f32_scores).enumerate() {
            assert!(
                (qs - fs).abs() <= QUANT_SCORE_TOLERANCE,
                "score {i} at {threads} threads: quantized {qs} vs f32 {fs} \
                 exceeds tolerance {QUANT_SCORE_TOLERANCE}"
            );
        }
        per_thread.push((threads, scores));
    }
    pool::clear_threads_override();
    let (_, first) = &per_thread[0];
    for (threads, scores) in &per_thread[1..] {
        assert_eq!(
            scores, first,
            "quantized scores diverged at {threads} threads"
        );
    }
}
