//! End-to-end tests of the `amoe-serve` service over loopback TCP:
//! batched scores must be **bit-identical** to direct in-process
//! `ServingMoe::predict` at every pool width, overload must surface as
//! `OVERLOADED`, a hot-swap under load must not fail a single
//! in-flight request, and `SHUTDOWN` must drain every admitted
//! request before the server exits.
//!
//! The tests share one process, and the pool thread-override is a
//! process-wide global, so each test sets it explicitly where it
//! matters and restores the default before returning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adv_hsc_moe::dataset::{generate, Batch, Dataset, GeneratorConfig};
use adv_hsc_moe::moe::config::TowerConfig;
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel};
use adv_hsc_moe::serve::{
    Client, FeatureRow, ModelSpec, OverloadPolicy, ServeConfig, ServeError, Server,
};
use adv_hsc_moe::tensor::pool;

fn trained_model(seed: u64, steps: usize) -> (Dataset, MoeModel) {
    let d = generate(&GeneratorConfig::tiny(41));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        seed,
        ..MoeConfig::default()
    };
    let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..steps {
        m.train_step(&batch);
    }
    (d, m)
}

fn feature_rows(d: &Dataset, range: std::ops::Range<usize>) -> Vec<FeatureRow> {
    d.test.examples[range]
        .iter()
        .map(|e| FeatureRow {
            sc: e.pred_sc as u32,
            tc: e.pred_tc as u32,
            brand: e.brand as u32,
            shop: e.shop as u32,
            user_segment: e.user_segment as u32,
            price_bucket: e.price_bucket as u32,
            query: e.query,
            numeric: e.numeric.to_vec(),
        })
        .collect()
}

/// Batched serving over TCP returns exactly the scores the model
/// produces in-process — bitwise, for every pool width, even though
/// concurrent requests are coalesced into shared micro-batches.
#[test]
fn scores_over_tcp_are_bit_identical_to_direct_predict() {
    // Mixed-size concurrent requests, one expected score vector each.
    let spans: Vec<std::ops::Range<usize>> = vec![0..3, 3..4, 4..11, 11..16, 16..17, 17..25];

    for threads in [1usize, 2, 4] {
        pool::set_threads(threads);
        let (d, model) = trained_model(900, 8);
        let expected: Vec<Vec<f32>> = spans
            .iter()
            .map(|s| {
                let batch = Batch::from_split(&d.test, &s.clone().collect::<Vec<_>>());
                ServingMoe::new(&model).predict(&batch)
            })
            .collect();
        let server = Server::start(
            "127.0.0.1:0",
            model,
            d.meta.clone(),
            ServeConfig {
                // Generous window so concurrent requests coalesce.
                max_wait: Duration::from_millis(20),
                ..ServeConfig::default()
            },
        )
        .expect("server start");
        let addr = server.local_addr();

        let handles: Vec<_> = spans
            .iter()
            .cloned()
            .map(|span| {
                let rows = feature_rows(&d, span);
                std::thread::spawn(move || {
                    Client::connect(addr)
                        .expect("connect")
                        .score(&rows)
                        .expect("score")
                })
            })
            .collect();
        let got: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g, e,
                "threads={threads}: request {i} scores differ from direct predict"
            );
        }
        let mut admin = Client::connect(addr).expect("admin connect");
        let stats = admin.stats().expect("stats");
        assert_eq!(stats.ok, spans.len() as u64, "threads={threads}");
        assert_eq!(stats.errors, 0, "threads={threads}");
        admin.shutdown().expect("shutdown");
        server.join();
    }
    pool::clear_threads_override();
}

/// A full queue with a throttled batcher rejects with `OVERLOADED`
/// (and counts it) instead of erroring or hanging.
#[test]
fn full_queue_returns_overloaded() {
    let (d, model) = trained_model(901, 2);
    let server = Server::start(
        "127.0.0.1:0",
        model,
        d.meta.clone(),
        ServeConfig {
            queue_cap: 2,
            max_batch_rows: 2,
            overload: OverloadPolicy::Reject,
            batcher_delay: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();

    let overloaded = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let rows = feature_rows(&d, i..i + 1);
            let overloaded = Arc::clone(&overloaded);
            std::thread::spawn(
                move || match Client::connect(addr).expect("connect").score(&rows) {
                    Ok(scores) => assert_eq!(scores.len(), 1),
                    Err(ServeError::Overloaded) => {
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                },
            )
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        overloaded.load(Ordering::Relaxed) > 0,
        "8 concurrent requests against a queue of 2 should shed load"
    );
    let mut admin = Client::connect(addr).expect("admin connect");
    let stats = admin.stats().expect("stats");
    assert_eq!(
        stats.overloaded,
        overloaded.load(Ordering::Relaxed) as u64,
        "server-side overload count disagrees with clients"
    );
    admin.shutdown().expect("shutdown");
    server.join();
}

/// `SHUTDOWN` drains: requests admitted before the shutdown arrives
/// are all answered with real scores, never dropped.
#[test]
fn shutdown_drains_admitted_requests() {
    let (d, model) = trained_model(902, 2);
    let server = Server::start(
        "127.0.0.1:0",
        model,
        d.meta.clone(),
        ServeConfig {
            queue_cap: 64,
            // Slow batches so the queue still holds requests when the
            // shutdown lands.
            batcher_delay: Some(Duration::from_millis(20)),
            max_batch_rows: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();

    let answered = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let rows = feature_rows(&d, i..i + 1);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let scores = Client::connect(addr)
                    .expect("connect")
                    .score(&rows)
                    .expect("admitted request must be answered during drain");
                assert_eq!(scores.len(), 1);
                answered.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    // Wait until all 10 requests have reached the server (the slow
    // batcher guarantees a backlog remains), then shut down mid-drain.
    let mut admin = Client::connect(addr).expect("admin connect");
    while admin.stats().expect("stats").requests < 10 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(5));
    admin.shutdown().expect("shutdown");
    for h in handles {
        h.join().unwrap();
    }
    server.join();
    assert_eq!(answered.load(Ordering::Relaxed), 10);
}

/// RELOAD under load: every response is bitwise one of {old-model
/// scores, new-model scores}, nothing fails, and the swap is counted.
#[test]
fn reload_hot_swaps_without_failing_requests() {
    let (d, model_a) = trained_model(903, 4);
    let (_, model_b) = trained_model(904, 9);
    let dir = std::env::temp_dir().join(format!("amoe_serve_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("model_b.amoe");
    model_b.params().save(&ckpt).expect("save checkpoint");
    ModelSpec {
        meta: d.meta.clone(),
        config: model_b.config().clone(),
        serve_quantized: false,
    }
    .save(dir.join("model_b.spec"))
    .expect("save spec");

    let span = 0..6;
    let batch = Batch::from_split(&d.test, &span.clone().collect::<Vec<_>>());
    let scores_a = ServingMoe::new(&model_a).predict(&batch);
    let scores_b = ServingMoe::new(&model_b).predict(&batch);
    assert_ne!(scores_a, scores_b, "models must actually differ");

    let server = Server::start(
        "127.0.0.1:0",
        model_a,
        d.meta.clone(),
        ServeConfig::default(),
    )
    .expect("server start");
    let addr = server.local_addr();

    let rows = feature_rows(&d, span);
    let saw_b = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let rows = rows.clone();
            let (scores_a, scores_b) = (scores_a.clone(), scores_b.clone());
            let saw_b = Arc::clone(&saw_b);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..40 {
                    let got = client.score(&rows).expect("score during reload");
                    if got == scores_b {
                        saw_b.fetch_add(1, Ordering::Relaxed);
                    } else {
                        assert_eq!(got, scores_a, "response matches neither model");
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    let mut admin = Client::connect(addr).expect("admin connect");
    admin
        .reload(ckpt.to_str().expect("utf-8 path"))
        .expect("reload");
    for w in workers {
        w.join().unwrap();
    }
    // After the swap acknowledgement, fresh requests use the new model.
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.score(&rows).expect("score"), scores_b);
    let stats = admin.stats().expect("stats");
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.errors, 0);
    admin.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bad RELOAD (missing file, incompatible checkpoint) keeps the old
/// model serving and reports an error.
#[test]
fn failed_reload_keeps_serving_old_model() {
    let (d, model) = trained_model(905, 3);
    let rows = feature_rows(&d, 0..4);
    let batch = Batch::from_split(&d.test, &(0..4).collect::<Vec<_>>());
    let expected = ServingMoe::new(&model).predict(&batch);

    let server = Server::start("127.0.0.1:0", model, d.meta.clone(), ServeConfig::default())
        .expect("server start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    match client.reload("/nonexistent/amoe_serve_missing.amoe") {
        Err(ServeError::Server(msg)) => {
            assert!(msg.contains("checkpoint load failed"), "message: {msg}")
        }
        other => panic!("expected server error, got {other:?}"),
    }
    assert_eq!(client.score(&rows).expect("score"), expected);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.reloads, 0);
    client.shutdown().expect("shutdown");
    server.join();
}

/// Schema violations (out-of-vocabulary ids) are rejected per request
/// with a message naming the field, and the connection stays usable.
#[test]
fn out_of_vocab_request_is_rejected_not_fatal() {
    let (d, model) = trained_model(906, 2);
    let server = Server::start("127.0.0.1:0", model, d.meta.clone(), ServeConfig::default())
        .expect("server start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let mut bad = feature_rows(&d, 0..1);
    bad[0].shop = u32::MAX;
    match client.score(&bad) {
        Err(ServeError::Server(msg)) => assert!(msg.contains("shop"), "message: {msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Same connection still serves valid requests afterwards.
    let good = feature_rows(&d, 0..2);
    assert_eq!(client.score(&good).expect("score").len(), 2);
    client.shutdown().expect("shutdown");
    server.join();
}
