//! End-to-end tests of the `amoe-serve` service over loopback TCP:
//! batched scores must be **bit-identical** to direct in-process
//! `ServingMoe::predict` at every pool width, overload must surface as
//! `OVERLOADED`, a hot-swap under load must not fail a single
//! in-flight request, and `SHUTDOWN` must drain every admitted
//! request before the server exits.
//!
//! The tests share one process, and the pool thread-override is a
//! process-wide global, so each test sets it explicitly where it
//! matters and restores the default before returning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adv_hsc_moe::dataset::{generate, Batch, Dataset, GeneratorConfig};
use adv_hsc_moe::moe::config::TowerConfig;
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel};
use adv_hsc_moe::serve::{
    shard_of, Client, FeatureRow, ModelSpec, OverloadPolicy, ServeConfig, ServeError, Server,
};
use adv_hsc_moe::tensor::pool;

fn trained_model(seed: u64, steps: usize) -> (Dataset, MoeModel) {
    let d = generate(&GeneratorConfig::tiny(41));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        seed,
        ..MoeConfig::default()
    };
    let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..steps {
        m.train_step(&batch);
    }
    (d, m)
}

fn feature_rows(d: &Dataset, range: std::ops::Range<usize>) -> Vec<FeatureRow> {
    d.test.examples[range]
        .iter()
        .map(|e| FeatureRow {
            sc: e.pred_sc as u32,
            tc: e.pred_tc as u32,
            brand: e.brand as u32,
            shop: e.shop as u32,
            user_segment: e.user_segment as u32,
            price_bucket: e.price_bucket as u32,
            query: e.query,
            numeric: e.numeric.to_vec(),
        })
        .collect()
}

/// Batched serving over TCP returns exactly the scores the model
/// produces in-process — bitwise, for every pool width, even though
/// concurrent requests are coalesced into shared micro-batches.
#[test]
fn scores_over_tcp_are_bit_identical_to_direct_predict() {
    // Mixed-size concurrent requests, one expected score vector each.
    let spans: Vec<std::ops::Range<usize>> = vec![0..3, 3..4, 4..11, 11..16, 16..17, 17..25];

    for threads in [1usize, 2, 4] {
        pool::set_threads(threads);
        let (d, model) = trained_model(900, 8);
        let expected: Vec<Vec<f32>> = spans
            .iter()
            .map(|s| {
                let batch = Batch::from_split(&d.test, &s.clone().collect::<Vec<_>>());
                ServingMoe::new(&model).predict(&batch)
            })
            .collect();
        let server = Server::start(
            "127.0.0.1:0",
            model,
            d.meta.clone(),
            ServeConfig {
                // Generous window so concurrent requests coalesce.
                max_wait: Duration::from_millis(20),
                ..ServeConfig::default()
            },
        )
        .expect("server start");
        let addr = server.local_addr();

        let handles: Vec<_> = spans
            .iter()
            .cloned()
            .map(|span| {
                let rows = feature_rows(&d, span);
                std::thread::spawn(move || {
                    Client::connect(addr)
                        .expect("connect")
                        .score(&rows)
                        .expect("score")
                })
            })
            .collect();
        let got: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g, e,
                "threads={threads}: request {i} scores differ from direct predict"
            );
        }
        let mut admin = Client::connect(addr).expect("admin connect");
        let stats = admin.stats().expect("stats");
        assert_eq!(stats.ok, spans.len() as u64, "threads={threads}");
        assert_eq!(stats.errors, 0, "threads={threads}");
        admin.shutdown().expect("shutdown");
        server.join();
    }
    pool::clear_threads_override();
}

/// A full queue with a throttled batcher rejects with `OVERLOADED`
/// (and counts it) instead of erroring or hanging.
#[test]
fn full_queue_returns_overloaded() {
    let (d, model) = trained_model(901, 2);
    let server = Server::start(
        "127.0.0.1:0",
        model,
        d.meta.clone(),
        ServeConfig {
            queue_cap: 2,
            max_batch_rows: 2,
            overload: OverloadPolicy::Reject,
            batcher_delay: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();

    let overloaded = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let rows = feature_rows(&d, i..i + 1);
            let overloaded = Arc::clone(&overloaded);
            std::thread::spawn(
                move || match Client::connect(addr).expect("connect").score(&rows) {
                    Ok(scores) => assert_eq!(scores.len(), 1),
                    Err(ServeError::Overloaded) => {
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                },
            )
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        overloaded.load(Ordering::Relaxed) > 0,
        "8 concurrent requests against a queue of 2 should shed load"
    );
    let mut admin = Client::connect(addr).expect("admin connect");
    let stats = admin.stats().expect("stats");
    assert_eq!(
        stats.overloaded,
        overloaded.load(Ordering::Relaxed) as u64,
        "server-side overload count disagrees with clients"
    );
    admin.shutdown().expect("shutdown");
    server.join();
}

/// `SHUTDOWN` drains: requests admitted before the shutdown arrives
/// are all answered with real scores, never dropped.
#[test]
fn shutdown_drains_admitted_requests() {
    let (d, model) = trained_model(902, 2);
    let server = Server::start(
        "127.0.0.1:0",
        model,
        d.meta.clone(),
        ServeConfig {
            queue_cap: 64,
            // Slow batches so the queue still holds requests when the
            // shutdown lands.
            batcher_delay: Some(Duration::from_millis(20)),
            max_batch_rows: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();

    let answered = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let rows = feature_rows(&d, i..i + 1);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let scores = Client::connect(addr)
                    .expect("connect")
                    .score(&rows)
                    .expect("admitted request must be answered during drain");
                assert_eq!(scores.len(), 1);
                answered.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    // Wait until all 10 requests have reached the server (the slow
    // batcher guarantees a backlog remains), then shut down mid-drain.
    let mut admin = Client::connect(addr).expect("admin connect");
    while admin.stats().expect("stats").requests < 10 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(5));
    admin.shutdown().expect("shutdown");
    for h in handles {
        h.join().unwrap();
    }
    server.join();
    assert_eq!(answered.load(Ordering::Relaxed), 10);
}

/// RELOAD under load: every response is bitwise one of {old-model
/// scores, new-model scores}, nothing fails, and the swap is counted.
#[test]
fn reload_hot_swaps_without_failing_requests() {
    let (d, model_a) = trained_model(903, 4);
    let (_, model_b) = trained_model(904, 9);
    let dir = std::env::temp_dir().join(format!("amoe_serve_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("model_b.amoe");
    model_b.params().save(&ckpt).expect("save checkpoint");
    ModelSpec {
        meta: d.meta.clone(),
        config: model_b.config().clone(),
        serve_quantized: false,
    }
    .save(dir.join("model_b.spec"))
    .expect("save spec");

    let span = 0..6;
    let batch = Batch::from_split(&d.test, &span.clone().collect::<Vec<_>>());
    let scores_a = ServingMoe::new(&model_a).predict(&batch);
    let scores_b = ServingMoe::new(&model_b).predict(&batch);
    assert_ne!(scores_a, scores_b, "models must actually differ");

    let server = Server::start(
        "127.0.0.1:0",
        model_a,
        d.meta.clone(),
        ServeConfig::default(),
    )
    .expect("server start");
    let addr = server.local_addr();

    let rows = feature_rows(&d, span);
    let saw_b = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let rows = rows.clone();
            let (scores_a, scores_b) = (scores_a.clone(), scores_b.clone());
            let saw_b = Arc::clone(&saw_b);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..40 {
                    let got = client.score(&rows).expect("score during reload");
                    if got == scores_b {
                        saw_b.fetch_add(1, Ordering::Relaxed);
                    } else {
                        assert_eq!(got, scores_a, "response matches neither model");
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    let mut admin = Client::connect(addr).expect("admin connect");
    admin
        .reload(ckpt.to_str().expect("utf-8 path"))
        .expect("reload");
    for w in workers {
        w.join().unwrap();
    }
    // After the swap acknowledgement, fresh requests use the new model.
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.score(&rows).expect("score"), scores_b);
    let stats = admin.stats().expect("stats");
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.errors, 0);
    admin.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bad RELOAD (missing file, incompatible checkpoint) keeps the old
/// model serving and reports an error.
#[test]
fn failed_reload_keeps_serving_old_model() {
    let (d, model) = trained_model(905, 3);
    let rows = feature_rows(&d, 0..4);
    let batch = Batch::from_split(&d.test, &(0..4).collect::<Vec<_>>());
    let expected = ServingMoe::new(&model).predict(&batch);

    let server = Server::start("127.0.0.1:0", model, d.meta.clone(), ServeConfig::default())
        .expect("server start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    match client.reload("/nonexistent/amoe_serve_missing.amoe") {
        Err(ServeError::Server(msg)) => {
            assert!(msg.contains("checkpoint load failed"), "message: {msg}")
        }
        other => panic!("expected server error, got {other:?}"),
    }
    assert_eq!(client.score(&rows).expect("score"), expected);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.reloads, 0);
    client.shutdown().expect("shutdown");
    server.join();
}

/// Batcher shards never change scores: at every shard count × pool
/// width, serving the same weights returns bitwise the single-shard
/// direct-predict scores, even with concurrent mixed-size requests.
#[test]
fn sharded_scores_are_bit_identical_across_shard_and_thread_counts() {
    let spans: Vec<std::ops::Range<usize>> = vec![0..3, 3..4, 4..11, 11..16, 16..17, 17..25];
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        let (d, model) = trained_model(910, 4);
        let expected: Vec<Vec<f32>> = spans
            .iter()
            .map(|s| {
                let batch = Batch::from_split(&d.test, &s.clone().collect::<Vec<_>>());
                ServingMoe::new(&model).predict(&batch)
            })
            .collect();
        for shards in [1usize, 2, 4] {
            // Rebuild from the same ParamSet so every shard count
            // serves bitwise-identical weights.
            let served = MoeModel::from_params(
                &d.meta,
                model.config().clone(),
                OptimConfig::default(),
                model.params(),
            )
            .expect("rebuild from params");
            let server = Server::start(
                "127.0.0.1:0",
                served,
                d.meta.clone(),
                ServeConfig {
                    shards,
                    max_wait: Duration::from_millis(20),
                    ..ServeConfig::default()
                },
            )
            .expect("server start");
            let addr = server.local_addr();
            let handles: Vec<_> = spans
                .iter()
                .cloned()
                .map(|span| {
                    let rows = feature_rows(&d, span);
                    std::thread::spawn(move || {
                        Client::connect(addr)
                            .expect("connect")
                            .score(&rows)
                            .expect("score")
                    })
                })
                .collect();
            let got: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(
                    g, e,
                    "threads={threads} shards={shards}: request {i} differs from direct predict"
                );
            }
            let mut admin = Client::connect(addr).expect("admin connect");
            let stats = admin.stats().expect("stats");
            assert_eq!(
                stats.ok,
                spans.len() as u64,
                "threads={threads} shards={shards}"
            );
            assert_eq!(stats.errors, 0, "threads={threads} shards={shards}");
            admin.shutdown().expect("shutdown");
            server.join();
        }
    }
    pool::clear_threads_override();
}

/// One pipelined connection with several requests in flight completes
/// them out of submission order when their shards drain at different
/// speeds — and every completion still carries the right scores.
#[test]
fn pipelined_connection_completes_out_of_order() {
    let (d, model) = trained_model(911, 2);
    const N: usize = 10;
    const SHARDS: usize = 3;
    let delay = Duration::from_millis(40);
    let expected: Vec<Vec<f32>> = (0..N)
        .map(|i| {
            let batch = Batch::from_split(&d.test, &[i]);
            ServingMoe::new(&model).predict(&batch)
        })
        .collect();

    // With one request per batch and a fixed per-batch delay, a
    // shard's requests complete serially in submission order, so a
    // request's completion time grows with its in-shard rank. The
    // shard hash is deterministic, so find a submission pair (j < k)
    // where j sits ≥ 2 ranks deeper in its shard than k: k must then
    // finish at least one full delay period before j.
    let mut rank = [0usize; N + 1];
    let mut cnt = [0usize; SHARDS];
    for id in 1..=N as u64 {
        let s = shard_of(id, SHARDS);
        rank[id as usize] = cnt[s];
        cnt[s] += 1;
    }
    let pair = (1..=N as u64)
        .flat_map(|j| (j + 1..=N as u64).map(move |k| (j, k)))
        .filter(|&(j, k)| rank[j as usize] >= rank[k as usize] + 2)
        .max_by_key(|&(j, k)| rank[j as usize] - rank[k as usize]);
    let (deep, shallow) = pair.expect("precondition: the shard hash must imbalance ids 1..=N");

    let server = Server::start(
        "127.0.0.1:0",
        model,
        d.meta.clone(),
        ServeConfig {
            shards: SHARDS,
            max_batch_rows: 1,
            queue_cap: 64,
            batcher_delay: Some(delay),
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.negotiated_version() >= 3);

    let ids: Vec<u64> = (0..N)
        .map(|i| {
            client
                .submit(&feature_rows(&d, i..i + 1))
                .expect("pipelined submit")
        })
        .collect();
    assert_eq!(ids, (1..=N as u64).collect::<Vec<_>>());
    assert_eq!(client.in_flight(), N);

    let mut completion_pos = [usize::MAX; N + 1];
    for pos in 0..N {
        let done = client.poll().expect("poll");
        let scores = done.result.expect("pipelined score");
        assert_eq!(
            scores,
            expected[done.request_id as usize - 1],
            "request {} scored wrong",
            done.request_id
        );
        completion_pos[done.request_id as usize] = pos;
    }
    assert_eq!(client.in_flight(), 0);
    assert!(
        completion_pos[shallow as usize] < completion_pos[deep as usize],
        "request {shallow} (shard rank {}) should complete before {deep} (shard rank {}): \
         completion order {completion_pos:?}",
        rank[shallow as usize],
        rank[deep as usize],
    );
    client.shutdown().expect("shutdown");
    server.join();
}

/// Overload and drain are per shard: each shard sheds its own
/// overflow (counted in the v3 per-shard stats), every submission gets
/// exactly one completion, and a SHUTDOWN still answers every admitted
/// request on every shard.
#[test]
fn overload_and_drain_are_per_shard() {
    let (d, model) = trained_model(912, 2);
    const SHARDS: usize = 2;
    // Precompute before `model` moves into the server.
    let expected: Vec<Vec<f32>> = (0..16)
        .map(|i| {
            let batch = Batch::from_split(&d.test, &[i]);
            ServingMoe::new(&model).predict(&batch)
        })
        .collect();
    let expected = |i: usize| expected[i].clone();
    let server = Server::start(
        "127.0.0.1:0",
        model,
        d.meta.clone(),
        ServeConfig {
            shards: SHARDS,
            queue_cap: 1,
            max_batch_rows: 1,
            overload: OverloadPolicy::Reject,
            batcher_delay: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // Wave 1: 12 single-row submits land ~6 per shard within the first
    // batch delay. Per shard at most one fits the batcher and one the
    // queue (cap 1), so each shard must shed at least one request.
    let wave1: Vec<u64> = (0..12)
        .map(|i| client.submit(&feature_rows(&d, i..i + 1)).expect("submit"))
        .collect();
    let mut shard_ok = [0u64; SHARDS];
    let mut shard_shed = [0u64; SHARDS];
    for _ in &wave1 {
        let done = client.poll().expect("poll");
        let shard = shard_of(done.request_id, SHARDS);
        match done.result {
            Ok(scores) => {
                assert_eq!(scores, expected(done.request_id as usize - 1));
                shard_ok[shard] += 1;
            }
            Err(ServeError::Overloaded) => shard_shed[shard] += 1,
            Err(e) => panic!("request {}: unexpected error {e}", done.request_id),
        }
    }
    assert_eq!(
        client.in_flight(),
        0,
        "every submission completes exactly once"
    );
    for s in 0..SHARDS {
        assert!(
            shard_shed[s] >= 1,
            "shard {s} should shed overflow: ok={shard_ok:?} shed={shard_shed:?}"
        );
        assert!(shard_ok[s] >= 1, "shard {s} should admit its first request");
    }

    // The server's per-shard counters agree with what the client saw.
    let mut admin = Client::connect(addr).expect("admin connect");
    let (snapshot, _, shards) = admin.stats_report().expect("stats");
    let shards = shards.expect("v3 stats carry per-shard counters");
    assert_eq!(shards.len(), SHARDS);
    for s in 0..SHARDS {
        assert_eq!(
            shards[s].overloaded, shard_shed[s],
            "shard {s} overload count disagrees with the client"
        );
    }
    assert_eq!(snapshot.overloaded, shard_shed.iter().sum::<u64>());

    // Wave 2: refill both shards, then shut down from the admin
    // connection while batches are still sleeping. Every admitted
    // request must still be answered with real scores during drain.
    let wave2: Vec<u64> = (12..16)
        .map(|i| client.submit(&feature_rows(&d, i..i + 1)).expect("submit"))
        .collect();
    // Only shut down once all four submits have been through
    // admission (the 50 ms batch delay keeps them queued or in the
    // batcher), so each shard has an admitted request to drain.
    while admin.stats().expect("stats").requests < 16 {
        std::thread::sleep(Duration::from_millis(2));
    }
    admin.shutdown().expect("shutdown");
    let mut drained_ok = 0;
    for _ in &wave2 {
        let done = client.poll().expect("poll during drain");
        match done.result {
            Ok(scores) => {
                assert_eq!(scores, expected(done.request_id as usize - 1));
                drained_ok += 1;
            }
            Err(ServeError::Overloaded) => {}
            // A submit that raced the queue close is refused, not lost.
            Err(ServeError::Server(msg)) => {
                assert!(msg.contains("shutting down"), "message: {msg}");
            }
            Err(e) => panic!("request {}: unexpected error {e}", done.request_id),
        }
    }
    assert_eq!(
        client.in_flight(),
        0,
        "drain answers every admitted request"
    );
    assert!(
        drained_ok >= 1,
        "at least each shard's first wave-2 request is admitted and drained"
    );
    server.join();
}

/// Every gate-input ablation is servable (PR 8 lifted the old
/// `GateInput::Sc`-only restriction): the server starts, and TCP
/// scores stay bit-identical to direct predicts for each variant.
#[test]
fn non_sc_gate_inputs_are_servable_bit_identical() {
    use adv_hsc_moe::moe::config::GateInput;
    for which in [GateInput::TcSc, GateInput::QueryTcSc, GateInput::All] {
        let d = generate(&GeneratorConfig::tiny(41));
        let cfg = MoeConfig {
            n_experts: 4,
            top_k: 2,
            tower: TowerConfig { hidden: vec![8] },
            gate_input: which,
            seed: 913,
            ..MoeConfig::default()
        };
        let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
        for _ in 0..2 {
            model.train_step(&batch);
        }
        let probe = Batch::from_split(&d.test, &(0..9).collect::<Vec<_>>());
        let expected = ServingMoe::new(&model).predict(&probe);

        let server = Server::start(
            "127.0.0.1:0",
            model,
            d.meta.clone(),
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{which:?}: server start: {e}"));
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let got = client
            .score(&feature_rows(&d, 0..9))
            .unwrap_or_else(|e| panic!("{which:?}: score: {e}"));
        assert_eq!(
            got, expected,
            "{which:?}: TCP scores differ from direct predict"
        );
        client.shutdown().expect("shutdown");
        server.join();
    }
}

/// Schema violations (out-of-vocabulary ids) are rejected per request
/// with a message naming the field, and the connection stays usable.
#[test]
fn out_of_vocab_request_is_rejected_not_fatal() {
    let (d, model) = trained_model(906, 2);
    let server = Server::start("127.0.0.1:0", model, d.meta.clone(), ServeConfig::default())
        .expect("server start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let mut bad = feature_rows(&d, 0..1);
    bad[0].shop = u32::MAX;
    match client.score(&bad) {
        Err(ServeError::Server(msg)) => assert!(msg.contains("shop"), "message: {msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Same connection still serves valid requests afterwards.
    let good = feature_rows(&d, 0..2);
    assert_eq!(client.score(&good).expect("score").len(), 2);
    client.shutdown().expect("shutdown");
    server.join();
}
