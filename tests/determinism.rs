//! Thread-count determinism: the parallel runtime must be an
//! implementation detail, invisible in the numbers. Same seed + same
//! data ⇒ bit-identical serving logits and an identical `EvalReport`
//! for `AMOE_THREADS` ∈ {1, 2, 8}.
//!
//! The guarantee comes from the pool's reduction discipline — workers
//! write disjoint output regions and merges happen in task order — so
//! these tests compare with exact equality, not tolerances. The sweep
//! lives in a single `#[test]` because the thread budget is process
//! global state.

use adv_hsc_moe::dataset::{generate, Batch, DriftConfig, DriftWorld, GeneratorConfig};
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::{QuantizedExperts, ServingMoe};
use adv_hsc_moe::moe::{MoeConfig, MoeModel, TrainConfig, Trainer};
use adv_hsc_moe::tensor::matmul::{self, reference};
use adv_hsc_moe::tensor::{pool, Rng};

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

#[test]
fn eval_report_and_serving_logits_identical_across_thread_counts() {
    let d = generate(&GeneratorConfig {
        train_sessions: 300,
        test_sessions: 120,
        ..GeneratorConfig::tiny(47)
    });
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 128,
        eval_batch_size: 64, // several eval shards even on the tiny split
        ..TrainConfig::default()
    });

    let mut reports = Vec::new();
    let mut all_logits = Vec::new();
    let mut all_scores = Vec::new();
    for &threads in &THREAD_SWEEP {
        pool::set_threads(threads);
        // Fresh model per thread count: training itself goes through the
        // (parallel) matmul kernels, so this also covers the claim that
        // identical seeds give identical *trained weights*.
        let mut model = MoeModel::new(
            &d.meta,
            MoeConfig {
                n_experts: 8,
                top_k: 2,
                ..MoeConfig::adv_hsc_moe()
            },
            OptimConfig::default(),
        );
        trainer.fit(&mut model, &d.train);
        let report = trainer.evaluate(&model, &d.test);
        let scores = trainer.score_split(&model, &d.test);
        let batch = Batch::from_split(&d.test, &(0..100.min(d.test.len())).collect::<Vec<_>>());
        let logits = ServingMoe::new(&model).predict_logits(&batch);
        reports.push((threads, report));
        all_scores.push(scores);
        all_logits.push(logits);
    }
    pool::clear_threads_override();

    let (_, r0) = reports[0];
    for &(threads, r) in &reports[1..] {
        // EvalReport holds f64 aggregates; determinism means exact bits.
        assert!(
            r.auc == r0.auc
                && r.ndcg == r0.ndcg
                && r.ndcg_at_10 == r0.ndcg_at_10
                && r.global_auc == r0.global_auc
                && r.log_loss == r0.log_loss
                && r.sessions == r0.sessions,
            "EvalReport diverged at {threads} threads: {r:?} vs {r0:?}"
        );
    }
    for (i, &threads) in THREAD_SWEEP.iter().enumerate().skip(1) {
        assert_eq!(
            all_scores[i], all_scores[0],
            "eval scores diverged at {threads} threads"
        );
        assert_eq!(
            all_logits[i], all_logits[0],
            "serving logits diverged at {threads} threads"
        );
    }
}

#[test]
fn train_step_losses_identical_across_thread_counts() {
    // The split-graph training path fans per-expert forwards/backwards
    // across the pool; every loss component must still be bit-identical
    // for every thread budget, step by step.
    let d = generate(&GeneratorConfig::tiny(49));
    let batch = Batch::from_split(&d.train, &(0..96.min(d.train.len())).collect::<Vec<_>>());
    let sweep = |threads: usize| -> Vec<[f32; 5]> {
        pool::set_threads(threads);
        let mut model = MoeModel::new(
            &d.meta,
            MoeConfig {
                n_experts: 8,
                top_k: 2,
                ..MoeConfig::adv_hsc_moe()
            },
            OptimConfig::default(),
        );
        (0..6)
            .map(|_| {
                let s = model.train_step(&batch);
                [s.loss, s.ce, s.hsc, s.adv, s.load_balance]
            })
            .collect()
    };
    let reference = sweep(1);
    assert!(reference.iter().flatten().all(|v| v.is_finite()));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            sweep(threads),
            reference,
            "train_step losses diverged at {threads} threads"
        );
    }
    pool::clear_threads_override();
}

#[test]
fn blocked_gemm_bit_identical_to_serial_oracle_across_thread_counts() {
    // The cache-blocked packed kernels promise *exact* equality with the
    // naive serial reference — blocking and row-splitting must never
    // re-associate an accumulation chain. A KC-crossing depth (300 >
    // 256) above the parallel threshold exercises both mechanisms.
    let mut rng = Rng::seed_from(51);
    let a = rng.normal_matrix(48, 300, 0.0, 1.0);
    let b = rng.normal_matrix(300, 40, 0.0, 1.0);
    let at = rng.normal_matrix(300, 48, 0.0, 1.0);
    let bt = rng.normal_matrix(40, 300, 0.0, 1.0);
    let oracle = (
        reference::matmul(&a, &b),
        reference::matmul_tn(&at, &b),
        reference::matmul_nt(&a, &bt),
    );
    for &threads in &THREAD_SWEEP {
        pool::set_threads(threads);
        assert_eq!(
            matmul::matmul(&a, &b),
            oracle.0,
            "blocked nn kernel diverged from oracle at {threads} threads"
        );
        assert_eq!(
            matmul::matmul_tn(&at, &b),
            oracle.1,
            "blocked tn kernel diverged from oracle at {threads} threads"
        );
        assert_eq!(
            matmul::matmul_nt(&a, &bt),
            oracle.2,
            "blocked nt kernel diverged from oracle at {threads} threads"
        );
    }
    pool::clear_threads_override();
}

#[test]
fn quantized_serving_deterministic_for_fixed_seed() {
    // The int8 serving path is a pure function of (seed, data): two
    // independent builds must agree bit for bit, and so must every
    // thread budget — quantization adds approximation, never jitter.
    let run = |threads: usize| {
        pool::set_threads(threads);
        let d = generate(&GeneratorConfig::tiny(52));
        let mut model = MoeModel::new(
            &d.meta,
            MoeConfig {
                n_experts: 6,
                top_k: 2,
                ..MoeConfig::default()
            },
            OptimConfig::default(),
        );
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        for _ in 0..5 {
            model.train_step(&batch);
        }
        let quant = QuantizedExperts::from_model(&model);
        ServingMoe::with_quantized(&model, &quant).predict_logits(&batch)
    };
    let reference_logits = run(1);
    assert!(reference_logits.iter().all(|v| v.is_finite()));
    assert_eq!(run(1), reference_logits, "same-seed rebuild diverged");
    for &threads in &THREAD_SWEEP[1..] {
        assert_eq!(
            run(threads),
            reference_logits,
            "quantized logits diverged at {threads} threads"
        );
    }
    pool::clear_threads_override();
}

#[test]
fn repeated_runs_same_seed_identical() {
    // Control: two identical runs under the same (default) thread budget
    // must agree bit-for-bit — rules out hidden global state.
    let run = || {
        let d = generate(&GeneratorConfig::tiny(48));
        let mut model = MoeModel::new(
            &d.meta,
            MoeConfig {
                n_experts: 6,
                top_k: 2,
                ..MoeConfig::default()
            },
            OptimConfig::default(),
        );
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        for _ in 0..5 {
            model.train_step(&batch);
        }
        ServingMoe::new(&model).predict_logits(&batch)
    };
    assert_eq!(run(), run());
}

/// Every field of every example in a drift window, with floats as raw
/// bits so equality is exact.
#[allow(clippy::type_complexity)]
fn drift_fingerprint(world: &DriftWorld, ticks: &[u64], sessions: usize) -> Vec<Vec<u64>> {
    ticks
        .iter()
        .map(|&t| {
            let w = world.window(t, sessions);
            let mut fp = Vec::with_capacity(w.split.len() * 12);
            fp.push(w.tick);
            fp.push(w.split.sessions.len() as u64);
            for e in &w.split.examples {
                fp.push(u64::from(e.session));
                fp.push(u64::from(e.query));
                fp.push(e.true_sc as u64);
                fp.push(e.pred_sc as u64);
                fp.push(e.brand as u64);
                fp.push(e.shop as u64);
                fp.push(e.user_segment as u64);
                fp.push(e.price_bucket as u64);
                fp.push(u64::from(e.label));
                fp.push(u64::from(e.raw_sales.to_bits()));
                for v in e.numeric {
                    fp.push(u64::from(v.to_bits()));
                }
            }
            fp
        })
        .collect()
}

#[test]
fn drift_stream_windows_identical_across_runs_and_thread_counts() {
    // The drifting session stream feeds the online train→reload loop;
    // if it wobbled with the thread budget, "replay the same stream"
    // benchmarks would compare different workloads. Same seed + same
    // drift schedule ⇒ bit-identical windows for every AMOE_THREADS,
    // for repeated construction, and for out-of-order window access.
    let base = GeneratorConfig::tiny(47);
    let drift = DriftConfig::default();
    let ticks = [0u64, 1, 2, 5, 9];

    let reference = drift_fingerprint(&DriftWorld::new(&base, &drift), &ticks, 12);
    assert!(
        reference.iter().any(|fp| fp.len() > 2),
        "fingerprint must cover real examples"
    );

    for &threads in &THREAD_SWEEP {
        pool::set_threads(threads);
        let world = DriftWorld::new(&base, &drift);
        assert_eq!(
            drift_fingerprint(&world, &ticks, 12),
            reference,
            "drift stream diverged at {threads} threads"
        );
        // Windows are pure functions of (world, tick): reading the
        // stream backwards must reproduce the forward read exactly.
        let mut reversed: Vec<u64> = ticks.to_vec();
        reversed.reverse();
        let mut back = drift_fingerprint(&world, &reversed, 12);
        back.reverse();
        assert_eq!(
            back, reference,
            "out-of-order window access diverged at {threads} threads"
        );
    }
    pool::clear_threads_override();

    // A different drift seed must actually change the stream (the
    // schedule is not vestigial).
    let other = DriftWorld::new(
        &base,
        &DriftConfig {
            seed: drift.seed + 1,
            ..drift
        },
    );
    assert_ne!(
        drift_fingerprint(&other, &ticks, 12),
        reference,
        "drift schedule seed must matter"
    );
}
