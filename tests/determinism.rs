//! Thread-count determinism: the parallel runtime must be an
//! implementation detail, invisible in the numbers. Same seed + same
//! data ⇒ bit-identical serving logits and an identical `EvalReport`
//! for `AMOE_THREADS` ∈ {1, 2, 8}.
//!
//! The guarantee comes from the pool's reduction discipline — workers
//! write disjoint output regions and merges happen in task order — so
//! these tests compare with exact equality, not tolerances. The sweep
//! lives in a single `#[test]` because the thread budget is process
//! global state.

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, TrainConfig, Trainer};
use adv_hsc_moe::tensor::pool;

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

#[test]
fn eval_report_and_serving_logits_identical_across_thread_counts() {
    let d = generate(&GeneratorConfig {
        train_sessions: 300,
        test_sessions: 120,
        ..GeneratorConfig::tiny(47)
    });
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 128,
        eval_batch_size: 64, // several eval shards even on the tiny split
        ..TrainConfig::default()
    });

    let mut reports = Vec::new();
    let mut all_logits = Vec::new();
    let mut all_scores = Vec::new();
    for &threads in &THREAD_SWEEP {
        pool::set_threads(threads);
        // Fresh model per thread count: training itself goes through the
        // (parallel) matmul kernels, so this also covers the claim that
        // identical seeds give identical *trained weights*.
        let mut model = MoeModel::new(
            &d.meta,
            MoeConfig {
                n_experts: 8,
                top_k: 2,
                ..MoeConfig::adv_hsc_moe()
            },
            OptimConfig::default(),
        );
        trainer.fit(&mut model, &d.train);
        let report = trainer.evaluate(&model, &d.test);
        let scores = trainer.score_split(&model, &d.test);
        let batch = Batch::from_split(&d.test, &(0..100.min(d.test.len())).collect::<Vec<_>>());
        let logits = ServingMoe::new(&model).predict_logits(&batch);
        reports.push((threads, report));
        all_scores.push(scores);
        all_logits.push(logits);
    }
    pool::clear_threads_override();

    let (_, r0) = reports[0];
    for &(threads, r) in &reports[1..] {
        // EvalReport holds f64 aggregates; determinism means exact bits.
        assert!(
            r.auc == r0.auc
                && r.ndcg == r0.ndcg
                && r.ndcg_at_10 == r0.ndcg_at_10
                && r.global_auc == r0.global_auc
                && r.log_loss == r0.log_loss
                && r.sessions == r0.sessions,
            "EvalReport diverged at {threads} threads: {r:?} vs {r0:?}"
        );
    }
    for (i, &threads) in THREAD_SWEEP.iter().enumerate().skip(1) {
        assert_eq!(
            all_scores[i], all_scores[0],
            "eval scores diverged at {threads} threads"
        );
        assert_eq!(
            all_logits[i], all_logits[0],
            "serving logits diverged at {threads} threads"
        );
    }
}

#[test]
fn train_step_losses_identical_across_thread_counts() {
    // The split-graph training path fans per-expert forwards/backwards
    // across the pool; every loss component must still be bit-identical
    // for every thread budget, step by step.
    let d = generate(&GeneratorConfig::tiny(49));
    let batch = Batch::from_split(&d.train, &(0..96.min(d.train.len())).collect::<Vec<_>>());
    let sweep = |threads: usize| -> Vec<[f32; 5]> {
        pool::set_threads(threads);
        let mut model = MoeModel::new(
            &d.meta,
            MoeConfig {
                n_experts: 8,
                top_k: 2,
                ..MoeConfig::adv_hsc_moe()
            },
            OptimConfig::default(),
        );
        (0..6)
            .map(|_| {
                let s = model.train_step(&batch);
                [s.loss, s.ce, s.hsc, s.adv, s.load_balance]
            })
            .collect()
    };
    let reference = sweep(1);
    assert!(reference.iter().flatten().all(|v| v.is_finite()));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            sweep(threads),
            reference,
            "train_step losses diverged at {threads} threads"
        );
    }
    pool::clear_threads_override();
}

#[test]
fn repeated_runs_same_seed_identical() {
    // Control: two identical runs under the same (default) thread budget
    // must agree bit-for-bit — rules out hidden global state.
    let run = || {
        let d = generate(&GeneratorConfig::tiny(48));
        let mut model = MoeModel::new(
            &d.meta,
            MoeConfig {
                n_experts: 6,
                top_k: 2,
                ..MoeConfig::default()
            },
            OptimConfig::default(),
        );
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        for _ in 0..5 {
            model.train_step(&batch);
        }
        ServingMoe::new(&model).predict_logits(&batch)
    };
    assert_eq!(run(), run());
}
