//! Sparse/dense parity: the tape-free top-K serving path must reproduce
//! the training-graph dense forward (all experts computed, evaluation
//! mode) to within 1e-5 for every model variant of the paper — vanilla
//! MoE, Adv-MoE, HSC-MoE, Adv & HSC-MoE — including the `K = N` edge
//! case where the "sparse" path runs every expert.

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::config::TowerConfig;
use adv_hsc_moe::moe::ranker::{OptimConfig, Ranker};
use adv_hsc_moe::moe::serving::{QuantizedExperts, ServingMoe, QUANT_SCORE_TOLERANCE};
use adv_hsc_moe::moe::{MoeConfig, MoeModel};
use adv_hsc_moe::tensor::check::assert_close_rel;

fn small(cfg: MoeConfig) -> MoeConfig {
    MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        ..cfg
    }
}

/// Trains briefly (so weights are away from init) and asserts the two
/// paths agree on raw logits.
fn assert_parity(cfg: MoeConfig, label: &str) {
    let d = generate(&GeneratorConfig::tiny(43));
    let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let train_batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..8 {
        model.train_step(&train_batch);
    }
    let batch = Batch::from_split(&d.test, &(0..64).collect::<Vec<_>>());
    let dense = model.predict_logits_dense(&batch);
    let sparse = ServingMoe::new(&model).predict_logits(&batch);
    assert_eq!(dense.len(), sparse.len());
    for (i, (&a, &b)) in dense.iter().zip(&sparse).enumerate() {
        assert_close_rel(
            a,
            b,
            0.0,
            1e-5,
            &format!("{label}: logit {i} (dense vs sparse)"),
        );
    }
}

#[test]
fn parity_vanilla_moe() {
    assert_parity(small(MoeConfig::moe()), "MoE");
}

#[test]
fn parity_adv_moe() {
    assert_parity(small(MoeConfig::adv_moe()), "Adv-MoE");
}

#[test]
fn parity_hsc_moe() {
    assert_parity(small(MoeConfig::hsc_moe()), "HSC-MoE");
}

#[test]
fn parity_adv_hsc_moe() {
    assert_parity(small(MoeConfig::adv_hsc_moe()), "Adv & HSC-MoE");
}

#[test]
fn parity_k_equals_n_edge_case() {
    // With K = N the gate's masked softmax covers the full support and
    // every expert receives every example; the paths must still agree.
    // (Adversarial training is excluded here by construction: it needs
    // N - K ≥ 1 idle experts to disagree, and the config validates that.)
    let cfg = MoeConfig {
        top_k: 6,
        ..small(MoeConfig::hsc_moe())
    };
    assert_eq!(cfg.top_k, cfg.n_experts);
    assert_parity(cfg, "HSC-MoE, K=N");
}

#[test]
fn parity_k_one_edge_case() {
    // The opposite extreme: a single active expert per example.
    let cfg = MoeConfig {
        top_k: 1,
        ..small(MoeConfig::moe())
    };
    assert_parity(cfg, "MoE, K=1");
}

#[test]
fn parity_probabilities_too() {
    // End-to-end: sigmoid outputs (what the ranker actually serves).
    let d = generate(&GeneratorConfig::tiny(44));
    let mut model = MoeModel::new(
        &d.meta,
        small(MoeConfig::adv_hsc_moe()),
        OptimConfig::default(),
    );
    let train_batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..8 {
        model.train_step(&train_batch);
    }
    let batch = Batch::from_split(&d.test, &(0..50).collect::<Vec<_>>());
    let dense = model.predict(&batch);
    let sparse = ServingMoe::new(&model).predict(&batch);
    for (i, (&a, &b)) in dense.iter().zip(&sparse).enumerate() {
        assert_close_rel(
            a,
            b,
            0.0,
            1e-5,
            &format!("probability {i} (dense vs sparse)"),
        );
    }
}

#[test]
fn parity_quantized_serving_within_documented_tolerance() {
    // The int8 expert-weight path relaxes the contract from 1e-5 to
    // QUANT_SCORE_TOLERANCE on post-sigmoid scores (gate weights stay
    // f32, so routing is identical and only tower arithmetic drifts).
    let d = generate(&GeneratorConfig::tiny(45));
    let mut model = MoeModel::new(
        &d.meta,
        small(MoeConfig::adv_hsc_moe()),
        OptimConfig::default(),
    );
    let train_batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..8 {
        model.train_step(&train_batch);
    }
    let batch = Batch::from_split(&d.test, &(0..64).collect::<Vec<_>>());
    let dense = model.predict(&batch);
    let quant = QuantizedExperts::from_model(&model);
    let quantized = ServingMoe::with_quantized(&model, &quant).predict(&batch);
    assert_eq!(dense.len(), quantized.len());
    for (i, (&a, &b)) in dense.iter().zip(&quantized).enumerate() {
        assert_close_rel(
            a,
            b,
            0.0,
            QUANT_SCORE_TOLERANCE,
            &format!("score {i} (dense f32 vs quantized serving)"),
        );
    }
}
