//! No-op-mode cost test: with telemetry disabled, the obs entry points
//! must perform **zero heap allocations**, and a `ServingMoe::predict`
//! call must allocate exactly as much as an identical call would —
//! i.e. disabled telemetry adds nothing to the hot path.
//!
//! This test binary installs a counting global allocator, so it holds
//! only this test (integration test files are separate binaries).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, Ranker};
use adv_hsc_moe::tensor::pool;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn disabled_telemetry_allocates_nothing() {
    adv_hsc_moe::obs::set_enabled(false);

    // Primitive entry points: strictly zero allocations when off.
    let ((), n) = alloc_count(|| {
        adv_hsc_moe::obs::counter_add("noalloc.counter", 1);
        adv_hsc_moe::obs::gauge_set("noalloc.gauge", 1.0);
        adv_hsc_moe::obs::histogram_record("noalloc.hist", 1.0);
        let _span = adv_hsc_moe::obs::Span::enter("noalloc.span");
    });
    assert_eq!(n, 0, "disabled obs primitives allocated {n} times");

    // timed() may only pay for the closure it runs.
    let ((), n) = alloc_count(|| {
        let (v, _dt) = adv_hsc_moe::obs::timed("noalloc.timed", || 2 + 2);
        assert_eq!(v, 4);
    });
    assert_eq!(n, 0, "disabled timed() allocated {n} times");

    // Span::current_path must be allocation-free when telemetry is off
    // (it returns the empty string without walking the stack).
    let (path, n) = alloc_count(adv_hsc_moe::obs::Span::current_path);
    assert_eq!(path, "");
    assert_eq!(n, 0, "disabled Span::current_path allocated {n} times");

    // Trace entry points: same contract as the metrics gate — when
    // tracing is off, recording, id allocation and the active-batch
    // marker are a relaxed load and nothing else.
    adv_hsc_moe::obs::trace::set_enabled(false);
    let ((), n) = alloc_count(|| {
        adv_hsc_moe::obs::trace::record(1, 1, "noalloc.stage", 0, 10, 0);
        adv_hsc_moe::obs::trace::record_instant(1, 1, "noalloc.stage", 0);
        assert_eq!(adv_hsc_moe::obs::trace::next_trace_id(), None);
        adv_hsc_moe::obs::trace::set_active_batch(7);
        assert_eq!(adv_hsc_moe::obs::trace::active_batch(), 0);
    });
    assert_eq!(n, 0, "disabled trace entry points allocated {n} times");

    // Serving hot path: the predict-call allocation count with
    // telemetry off must be exactly reproducible — if the disabled
    // telemetry path allocated anything data-dependent or leaked
    // per-call state, the two counts would drift.
    let d = generate(&GeneratorConfig::tiny(55));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
    for _ in 0..3 {
        model.train_step(&batch);
    }
    // One configured thread: the pool runs serially, so thread-spawn
    // allocations cannot blur the count.
    pool::set_threads(1);
    let serving = ServingMoe::new(&model);
    let (_warm, _) = alloc_count(|| serving.predict(&batch));
    let (out_a, n_a) = alloc_count(|| serving.predict(&batch));
    let (out_b, n_b) = alloc_count(|| serving.predict(&batch));
    pool::clear_threads_override();
    assert_eq!(out_a, out_b);
    assert_eq!(
        n_a, n_b,
        "predict alloc count not reproducible with telemetry off ({n_a} vs {n_b})"
    );
    assert!(n_a > 0, "sanity: predict itself does allocate");
}
