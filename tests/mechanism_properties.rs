//! Mechanistic property tests: the paper's two regularizers must do, at
//! small scale, exactly what Sec. 4.3–4.4 claim — HSC shrinks the gap
//! between sibling gate distributions, and the adversarial loss
//! decorrelates expert outputs.

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, Ranker, TrainConfig, Trainer};
use adv_hsc_moe::tensor::Matrix;

fn data() -> adv_hsc_moe::dataset::Dataset {
    generate(&GeneratorConfig {
        seed: 11,
        train_sessions: 1_200,
        test_sessions: 300,
        ..GeneratorConfig::default()
    })
}

fn train(data: &adv_hsc_moe::dataset::Dataset, cfg: MoeConfig) -> MoeModel {
    let mut model = MoeModel::new(&data.meta, cfg, OptimConfig::default());
    let t = Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    });
    t.fit(&mut model, &data.train);
    model
}

/// Mean L2 gap between gate distributions of sibling-SC example pairs.
fn sibling_gate_gap(model: &MoeModel, data: &adv_hsc_moe::dataset::Dataset) -> f64 {
    let test = &data.test;
    // Bucket example indices by predicted SC (the gate input).
    let mut by_sc: Vec<Vec<usize>> = vec![Vec::new(); data.hierarchy.num_sc()];
    for (i, e) in test.examples.iter().enumerate().take(4000) {
        by_sc[e.pred_sc].push(i);
    }
    let mut gap = 0.0;
    let mut pairs = 0usize;
    for tc in 0..data.hierarchy.num_tc() {
        let subs: Vec<usize> = data
            .hierarchy
            .subs_of(tc)
            .filter(|&sc| !by_sc[sc].is_empty())
            .collect();
        for w in subs.windows(2) {
            let (a, b) = (by_sc[w[0]][0], by_sc[w[1]][0]);
            let batch = Batch::from_split(test, &[a, b]);
            let p = model.gate_probs_full(&batch);
            let d: f64 = (0..p.cols())
                .map(|c| f64::from(p[(0, c)] - p[(1, c)]).powi(2))
                .sum();
            gap += d.sqrt();
            pairs += 1;
        }
    }
    gap / pairs.max(1) as f64
}

/// Mean pairwise correlation of expert output columns over a batch.
fn expert_correlation(experts: &Matrix) -> f64 {
    let (rows, cols) = experts.shape();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in 0..cols {
        for b in a + 1..cols {
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for r in 0..rows {
                ma += f64::from(experts[(r, a)]);
                mb += f64::from(experts[(r, b)]);
            }
            ma /= rows as f64;
            mb /= rows as f64;
            let (mut cov, mut va, mut vb) = (0.0f64, 0.0f64, 0.0f64);
            for r in 0..rows {
                let xa = f64::from(experts[(r, a)]) - ma;
                let xb = f64::from(experts[(r, b)]) - mb;
                cov += xa * xb;
                va += xa * xa;
                vb += xb * xb;
            }
            if va > 0.0 && vb > 0.0 {
                total += cov / (va * vb).sqrt();
                pairs += 1;
            }
        }
    }
    total / pairs.max(1) as f64
}

#[test]
fn hsc_shrinks_sibling_gate_gap() {
    let data = data();
    let plain = train(&data, MoeConfig::default());
    let hsc = train(
        &data,
        MoeConfig {
            hsc: true,
            lambda1: 3e-1,
            ..MoeConfig::default()
        },
    );
    let gap_plain = sibling_gate_gap(&plain, &data);
    let gap_hsc = sibling_gate_gap(&hsc, &data);
    assert!(
        gap_hsc < gap_plain,
        "HSC should pull sibling gate distributions together: {gap_hsc:.4} !< {gap_plain:.4}"
    );
}

#[test]
fn adversarial_loss_decorrelates_experts() {
    let data = data();
    let plain = train(&data, MoeConfig::default());
    let adv = train(
        &data,
        MoeConfig {
            adversarial: true,
            lambda2: 1e-1,
            ..MoeConfig::default()
        },
    );
    let idx: Vec<usize> = (0..500.min(data.test.len())).collect();
    let batch = Batch::from_split(&data.test, &idx);
    let (e_plain, _) = plain.expert_logits(&batch);
    let (e_adv, _) = adv.expert_logits(&batch);
    let c_plain = expert_correlation(&e_plain);
    let c_adv = expert_correlation(&e_adv);
    assert!(
        c_adv < c_plain,
        "adversarial training should decorrelate experts: {c_adv:.3} !< {c_plain:.3}"
    );
}

/// Trains an HSC model and returns the mean HSC penalty observed over
/// the final training steps.
fn final_hsc_penalty(data: &adv_hsc_moe::dataset::Dataset, lambda1: f32) -> f32 {
    let mut model = MoeModel::new(
        &data.meta,
        MoeConfig {
            hsc: true,
            lambda1,
            n_experts: 8,
            top_k: 4,
            ..MoeConfig::default()
        },
        OptimConfig::default(),
    );
    let batch = Batch::from_split(&data.train, &(0..512).collect::<Vec<_>>());
    for _ in 0..60 {
        model.train_step(&batch);
    }
    (0..5).map(|_| model.train_step(&batch).hsc).sum::<f32>() / 5.0
}

#[test]
fn stronger_lambda1_enforces_smaller_hsc_gap() {
    // The constraint must actually bind: turning λ₁ up should leave the
    // trained gates closer together (a smaller residual HSC penalty)
    // than a near-zero λ₁.
    let data = data();
    let weak = final_hsc_penalty(&data, 1e-6);
    let strong = final_hsc_penalty(&data, 5e-1);
    assert!(
        strong < weak,
        "large λ1 should shrink the residual HSC gap: {strong:.6} !< {weak:.6}"
    );
}

/// Trains an adversarial model and returns the mean disagreement
/// observed over the final training steps.
fn final_adv_reward(data: &adv_hsc_moe::dataset::Dataset, lambda2: f32) -> f32 {
    let mut model = MoeModel::new(
        &data.meta,
        MoeConfig {
            adversarial: true,
            lambda2,
            n_experts: 8,
            top_k: 2,
            n_adversarial: 2,
            ..MoeConfig::default()
        },
        OptimConfig::default(),
    );
    let batch = Batch::from_split(&data.train, &(0..512).collect::<Vec<_>>());
    for _ in 0..60 {
        model.train_step(&batch);
    }
    (0..5).map(|_| model.train_step(&batch).adv).sum::<f32>() / 5.0
}

#[test]
fn stronger_lambda2_yields_more_disagreement() {
    // The disagreement reward must bind: a large λ₂ should leave the
    // trained experts further apart than a near-zero λ₂.
    let data = data();
    let weak = final_adv_reward(&data, 1e-6);
    let strong = final_adv_reward(&data, 3e-1);
    assert!(
        strong > weak,
        "large λ2 should increase expert disagreement: {strong:.5} !> {weak:.5}"
    );
}
