//! Property-based tests (proptest) over the numeric substrate and the
//! core loss invariants, run across randomly generated shapes and
//! values rather than hand-picked cases.

use adv_hsc_moe::autograd::Tape;
use adv_hsc_moe::moe::losses::{adversarial_loss, sample_adversarial_mask};
use adv_hsc_moe::tensor::{matmul, ops, reduce, topk, Matrix, Rng};
use proptest::prelude::*;

/// Strategy: a matrix with dims in [1, 8] and values in [-10, 10].
fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn two_same_shape() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        let a = proptest::collection::vec(-10.0f32..10.0, r * c);
        let b = proptest::collection::vec(-10.0f32..10.0, r * c);
        (a, b).prop_map(move |(a, b)| (Matrix::from_vec(r, c, a), Matrix::from_vec(r, c, b)))
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in two_same_shape()) {
        prop_assert_eq!(ops::add(&a, &b), ops::add(&b, &a));
    }

    #[test]
    fn sub_is_add_of_negation((a, b) in two_same_shape()) {
        let lhs = ops::sub(&a, &b);
        let rhs = ops::add(&a, &ops::scale(&b, -1.0));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-5);
        }
    }

    #[test]
    fn transpose_is_involution(a in matrix_strategy()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_distributes_over_addition(
        (a, (b, c)) in (1usize..=6, 1usize..=6, 1usize..=6).prop_flat_map(|(m, k, n)| {
            let a = proptest::collection::vec(-3.0f32..3.0, m * k)
                .prop_map(move |v| Matrix::from_vec(m, k, v));
            let b = proptest::collection::vec(-3.0f32..3.0, k * n)
                .prop_map(move |v| Matrix::from_vec(k, n, v));
            let c = proptest::collection::vec(-3.0f32..3.0, k * n)
                .prop_map(move |v| Matrix::from_vec(k, n, v));
            (a, (b, c))
        })
    ) {
        let lhs = matmul::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&matmul::matmul(&a, &b), &matmul::matmul(&a, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn softmax_rows_is_distribution(a in matrix_strategy()) {
        let s = ops::softmax_rows(&a);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_invariant_to_row_shift(a in matrix_strategy()) {
        let shifted = ops::add_scalar(&a, 3.5);
        let s1 = ops::softmax_rows(&a);
        let s2 = ops::softmax_rows(&shifted);
        for (x, y) in s1.as_slice().iter().zip(s2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn row_sum_equals_total(a in matrix_strategy()) {
        let total: f32 = reduce::sum(&a);
        let via_rows: f32 = reduce::sum(&reduce::row_sum(&a));
        prop_assert!((total - via_rows).abs() <= 1e-3 * (1.0 + total.abs()));
    }

    #[test]
    fn topk_mask_selects_maxima(a in matrix_strategy()) {
        let k = 1 + a.cols() / 2;
        let mask = topk::row_topk_mask(&a, k);
        for r in 0..a.rows() {
            // Every selected value >= every unselected value.
            let selected_min = (0..a.cols())
                .filter(|&c| mask[(r, c)] == 1.0)
                .map(|c| a[(r, c)])
                .fold(f32::INFINITY, f32::min);
            let unselected_max = (0..a.cols())
                .filter(|&c| mask[(r, c)] == 0.0)
                .map(|c| a[(r, c)])
                .fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(selected_min >= unselected_max);
        }
    }

    #[test]
    fn sigmoid_bounded_and_monotone(x in -50.0f32..50.0, y in -50.0f32..50.0) {
        let (sx, sy) = (ops::sigmoid_scalar(x), ops::sigmoid_scalar(y));
        prop_assert!((0.0..=1.0).contains(&sx));
        if x < y {
            prop_assert!(sx <= sy);
        }
    }

    #[test]
    fn adversarial_loss_nonnegative(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let logits = rng.normal_matrix(4, 8, 0.0, 2.0);
        let mask = topk::row_topk_mask(&logits, 3);
        let adv = sample_adversarial_mask(&mask, 2, &mut rng);
        let tape = Tape::new();
        let e = tape.leaf(logits);
        let v = adversarial_loss(e, &mask, &adv, 3, 2).value();
        prop_assert!(v.as_slice().iter().all(|&x| x >= -1e-5));
    }

    #[test]
    fn rng_below_uniform_support(seed in 0u64..500, n in 1usize..50) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn auc_invariant_to_monotone_transform(
        scores in proptest::collection::vec(-5.0f32..5.0, 4..30),
        flips in proptest::collection::vec(any::<bool>(), 4..30)
    ) {
        let n = scores.len().min(flips.len());
        let scores = &scores[..n];
        let labels = &flips[..n];
        let a1 = adv_hsc_moe::metrics::roc_auc(scores, labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| (s * 0.5).tanh() * 3.0 + 1.0).collect();
        let a2 = adv_hsc_moe::metrics::roc_auc(&transformed, labels);
        match (a1, a2) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "definedness changed"),
        }
    }
}
