//! Property-based tests over the numeric substrate and the core loss
//! invariants, run across randomly generated shapes and values rather
//! than hand-picked cases. Driven by the in-repo seeded harness
//! (`amoe_tensor::check`) so the workspace needs no external crates;
//! failures print a replayable `AMOE_CHECK_SEED`.

use adv_hsc_moe::autograd::Tape;
use adv_hsc_moe::moe::losses::{adversarial_loss, sample_adversarial_mask};
use adv_hsc_moe::tensor::check::{self, ensure, Checker};
use adv_hsc_moe::tensor::{matmul, ops, reduce, topk};

#[test]
fn add_commutes() {
    Checker::new("add_commutes").run(|rng| {
        let (r, c) = check::dims(rng, 1, 8);
        let a = check::matrix(rng, r, c, 10.0);
        let b = check::matrix(rng, r, c, 10.0);
        ensure(ops::add(&a, &b) == ops::add(&b, &a), "a + b != b + a")
    });
}

#[test]
fn sub_is_add_of_negation() {
    Checker::new("sub_is_add_of_negation").run(|rng| {
        let (r, c) = check::dims(rng, 1, 8);
        let a = check::matrix(rng, r, c, 10.0);
        let b = check::matrix(rng, r, c, 10.0);
        let lhs = ops::sub(&a, &b);
        let rhs = ops::add(&a, &ops::scale(&b, -1.0));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            ensure((x - y).abs() <= 1e-5, format!("{x} vs {y}"))?;
        }
        Ok(())
    });
}

#[test]
fn transpose_is_involution() {
    Checker::new("transpose_is_involution").run(|rng| {
        let (r, c) = check::dims(rng, 1, 8);
        let a = check::matrix(rng, r, c, 10.0);
        ensure(
            a.transpose().transpose() == a,
            "transpose twice != identity",
        )
    });
}

#[test]
fn matmul_distributes_over_addition() {
    Checker::new("matmul_distributes_over_addition").run(|rng| {
        let (m, k) = check::dims(rng, 1, 6);
        let (n, _) = check::dims(rng, 1, 6);
        let a = check::matrix(rng, m, k, 3.0);
        let b = check::matrix(rng, k, n, 3.0);
        let c = check::matrix(rng, k, n, 3.0);
        let lhs = matmul::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&matmul::matmul(&a, &b), &matmul::matmul(&a, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            ensure((x - y).abs() <= 1e-3, format!("{x} vs {y}"))?;
        }
        Ok(())
    });
}

#[test]
fn softmax_rows_is_distribution() {
    Checker::new("softmax_rows_is_distribution").run(|rng| {
        let (r, c) = check::dims(rng, 1, 8);
        let a = check::matrix(rng, r, c, 10.0);
        let s = ops::softmax_rows(&a);
        for row in 0..s.rows() {
            let sum: f32 = s.row(row).iter().sum();
            ensure((sum - 1.0).abs() < 1e-4, format!("row {row} sums to {sum}"))?;
            ensure(
                s.row(row).iter().all(|&v| (0.0..=1.0).contains(&v)),
                "probability outside [0, 1]",
            )?;
        }
        Ok(())
    });
}

#[test]
fn softmax_invariant_to_row_shift() {
    Checker::new("softmax_invariant_to_row_shift").run(|rng| {
        let (r, c) = check::dims(rng, 1, 8);
        let a = check::matrix(rng, r, c, 10.0);
        let shifted = ops::add_scalar(&a, 3.5);
        let s1 = ops::softmax_rows(&a);
        let s2 = ops::softmax_rows(&shifted);
        for (x, y) in s1.as_slice().iter().zip(s2.as_slice()) {
            ensure((x - y).abs() < 1e-5, format!("{x} vs {y}"))?;
        }
        Ok(())
    });
}

#[test]
fn row_sum_equals_total() {
    Checker::new("row_sum_equals_total").run(|rng| {
        let (r, c) = check::dims(rng, 1, 8);
        let a = check::matrix(rng, r, c, 10.0);
        let total: f32 = reduce::sum(&a);
        let via_rows: f32 = reduce::sum(&reduce::row_sum(&a));
        ensure(
            (total - via_rows).abs() <= 1e-3 * (1.0 + total.abs()),
            format!("{total} vs {via_rows}"),
        )
    });
}

#[test]
fn topk_mask_selects_maxima() {
    Checker::new("topk_mask_selects_maxima").run(|rng| {
        let (r, c) = check::dims(rng, 1, 8);
        let a = check::matrix(rng, r, c, 10.0);
        let k = 1 + a.cols() / 2;
        let mask = topk::row_topk_mask(&a, k);
        for row in 0..a.rows() {
            // Every selected value >= every unselected value.
            let selected_min = (0..a.cols())
                .filter(|&col| mask[(row, col)] == 1.0)
                .map(|col| a[(row, col)])
                .fold(f32::INFINITY, f32::min);
            let unselected_max = (0..a.cols())
                .filter(|&col| mask[(row, col)] == 0.0)
                .map(|col| a[(row, col)])
                .fold(f32::NEG_INFINITY, f32::max);
            ensure(
                selected_min >= unselected_max,
                format!("row {row}: kept {selected_min} < dropped {unselected_max}"),
            )?;
        }
        Ok(())
    });
}

#[test]
fn sigmoid_bounded_and_monotone() {
    Checker::new("sigmoid_bounded_and_monotone").run(|rng| {
        let x = rng.uniform_in(-50.0, 50.0);
        let y = rng.uniform_in(-50.0, 50.0);
        let (sx, sy) = (ops::sigmoid_scalar(x), ops::sigmoid_scalar(y));
        ensure((0.0..=1.0).contains(&sx), format!("sigmoid({x}) = {sx}"))?;
        if x < y {
            ensure(sx <= sy, format!("sigmoid not monotone at {x}, {y}"))?;
        }
        Ok(())
    });
}

#[test]
fn adversarial_loss_nonnegative() {
    Checker::new("adversarial_loss_nonnegative").run(|rng| {
        let logits = rng.normal_matrix(4, 8, 0.0, 2.0);
        let mask = topk::row_topk_mask(&logits, 3);
        let adv = sample_adversarial_mask(&mask, 2, rng);
        let tape = Tape::new();
        let e = tape.leaf(logits);
        let v = adversarial_loss(e, &mask, &adv, 3, 2).value();
        ensure(
            v.as_slice().iter().all(|&x| x >= -1e-5),
            "adversarial loss went negative",
        )
    });
}

#[test]
fn rng_below_uniform_support() {
    Checker::new("rng_below_uniform_support").run(|rng| {
        let n = 1 + rng.below(49);
        let mut child = rng.fork(1);
        for _ in 0..64 {
            let v = child.below(n);
            ensure(v < n, format!("below({n}) returned {v}"))?;
        }
        Ok(())
    });
}

#[test]
fn auc_invariant_to_monotone_transform() {
    Checker::new("auc_invariant_to_monotone_transform").run(|rng| {
        let n = 4 + rng.below(26);
        let scores: Vec<f32> = (0..n).map(|_| rng.uniform_in(-5.0, 5.0)).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let a1 = adv_hsc_moe::metrics::roc_auc(&scores, &labels);
        let transformed: Vec<f32> = scores
            .iter()
            .map(|&s| (s * 0.5).tanh() * 3.0 + 1.0)
            .collect();
        let a2 = adv_hsc_moe::metrics::roc_auc(&transformed, &labels);
        match (a1, a2) {
            (Some(x), Some(y)) => ensure((x - y).abs() < 1e-9, format!("{x} vs {y}")),
            (None, None) => Ok(()),
            _ => Err("definedness changed under monotone transform".to_string()),
        }
    });
}

/// The parallel kernels must agree bitwise with the serial ones on
/// randomly shaped products that straddle the parallel threshold.
#[test]
fn matmul_parallel_serial_agree() {
    use adv_hsc_moe::tensor::pool;
    Checker::new("matmul_parallel_serial_agree")
        .cases(32)
        .run(|rng| {
            let m = 32 + rng.below(96);
            let k = 16 + rng.below(64);
            let n = 16 + rng.below(64);
            let a = check::matrix(rng, m, k, 2.0);
            let b = check::matrix(rng, k, n, 2.0);
            pool::set_threads(1);
            let serial = matmul::matmul(&a, &b);
            pool::set_threads(1 + rng.below(8));
            let parallel = matmul::matmul(&a, &b);
            pool::clear_threads_override();
            ensure(serial == parallel, "parallel matmul diverged from serial")
        });
}

/// Smoke check that the default RNG plumbing in the harness is live.
#[test]
fn checker_rngs_are_decorrelated_across_cases() {
    let mut firsts: Vec<u64> = Vec::new();
    Checker::new("checker_rng_stream").cases(16).run(|rng| {
        firsts.push(rng.next_u64());
        Ok(())
    });
    firsts.sort_unstable();
    firsts.dedup();
    assert_eq!(firsts.len(), 16, "case seeds collided");
}
