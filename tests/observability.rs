//! Golden-record tests for the telemetry pipeline: one trainer epoch
//! plus one sparse serving call must produce schema-valid JSONL — a
//! stable field set with finite values — and toggling telemetry must
//! not change model behaviour.
//!
//! The JSONL sink and the enabled flag are process-global, so every
//! test takes `obs_lock()` to serialise against the others.

use std::sync::{Mutex, MutexGuard, PoisonError};

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, Ranker, TrainConfig, Trainer};
use adv_hsc_moe::obs::json::{parse, Value};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tiny_setup() -> (adv_hsc_moe::dataset::Dataset, MoeModel, Trainer) {
    let d = generate(&GeneratorConfig::tiny(61));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        adversarial: true,
        hsc: true,
        ..MoeConfig::default()
    };
    let model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 128,
        ..TrainConfig::default()
    });
    (d, model, trainer)
}

/// Asserts every number in the record is finite and no `null` appears
/// (the writer serialises non-finite floats as `null`).
fn assert_all_finite(v: &Value, context: &str) {
    match v {
        Value::Null => panic!("{context}: null (a non-finite number was emitted)"),
        Value::Num(n) => assert!(n.is_finite(), "{context}: non-finite number"),
        Value::Arr(items) => items.iter().for_each(|i| assert_all_finite(i, context)),
        Value::Obj(map) => map.values().for_each(|i| assert_all_finite(i, context)),
        _ => {}
    }
}

#[test]
fn one_epoch_and_one_serving_call_produce_schema_valid_jsonl() {
    let _guard = obs_lock();
    let path = std::env::temp_dir().join(format!("amoe_obs_golden_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    adv_hsc_moe::obs::sink::set_sink_path(Some(&path));

    let (d, mut model, trainer) = tiny_setup();
    trainer.fit(&mut model, &d.train);
    let batch = Batch::from_split(&d.test, &(0..32).collect::<Vec<_>>());
    let (_logits, stats) = ServingMoe::new(&model).predict_logits_with_stats(&batch);
    adv_hsc_moe::obs::emit_metrics_snapshot();
    adv_hsc_moe::obs::sink::set_sink_path(None);

    // The Stats contract backing the JSONL: finite throughput always.
    assert!(stats.examples_per_sec().is_finite() && stats.examples_per_sec() >= 0.0);

    let body = std::fs::read_to_string(&path).expect("run log exists");
    let records: Vec<Value> = body
        .lines()
        .enumerate()
        .map(|(i, l)| parse(l).unwrap_or_else(|e| panic!("line {}: {e}", i + 1)))
        .collect();
    assert!(!records.is_empty(), "no telemetry records emitted");

    // Envelope + finiteness on every record.
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("record {}", i + 1);
        assert!(
            r.get("event").and_then(Value::as_str).is_some(),
            "{ctx}: missing event"
        );
        assert!(
            r.get("ts").and_then(Value::as_f64).is_some(),
            "{ctx}: missing ts"
        );
        assert!(
            r.get("thread").and_then(Value::as_str).is_some(),
            "{ctx}: missing thread"
        );
        assert_all_finite(r, &ctx);
    }

    let by_kind = |kind: &str| -> Vec<&Value> {
        records
            .iter()
            .filter(|r| r.get("event").and_then(Value::as_str) == Some(kind))
            .collect()
    };

    // Golden schema: the one training epoch.
    let epochs = by_kind("train_epoch");
    assert_eq!(epochs.len(), 1, "exactly one train_epoch record");
    let e = epochs[0];
    for field in [
        "loss",
        "ce",
        "hsc",
        "adv",
        "load_balance",
        "gate_entropy",
        "epoch_secs",
    ] {
        assert!(
            e.get(field).and_then(Value::as_f64).is_some(),
            "train_epoch missing {field}"
        );
    }
    assert_eq!(
        e.get("model").and_then(Value::as_str),
        Some("Adv & HSC-MoE")
    );
    assert_eq!(e.get("epoch").and_then(Value::as_f64), Some(1.0));
    // Adv & HSC variant: both paper loss components are live.
    assert!(e.get("hsc").and_then(Value::as_f64).unwrap() > 0.0);
    let dispatch = e
        .get("dispatch")
        .and_then(Value::as_arr)
        .expect("dispatch array");
    assert_eq!(dispatch.len(), 6, "one dispatch slot per expert");
    // Each training example routes to K experts each step: counts sum
    // to K * examples-seen, which is positive after an epoch.
    let total: f64 = dispatch.iter().filter_map(Value::as_f64).sum();
    assert!(total > 0.0);

    // Golden schema: the one serving call.
    let calls = by_kind("serving_predict");
    assert_eq!(calls.len(), 1, "exactly one serving_predict record");
    let s = calls[0];
    assert_eq!(s.get("examples").and_then(Value::as_f64), Some(32.0));
    for field in [
        "threads",
        "gate_ns",
        "expert_ns",
        "scatter_ns",
        "total_ns",
        "examples_per_sec",
    ] {
        assert!(
            s.get(field).and_then(Value::as_f64).is_some(),
            "serving_predict missing {field}"
        );
    }
    let routed: f64 = s
        .get("dispatch")
        .and_then(Value::as_arr)
        .expect("dispatch array")
        .iter()
        .filter_map(Value::as_f64)
        .sum();
    assert_eq!(routed, 32.0 * 2.0, "serving dispatch sums to K * examples");

    // The end-of-run snapshot carries the per-phase span histograms.
    let snaps = by_kind("metrics_snapshot");
    assert_eq!(snaps.len(), 1);
    for metric in [
        "serving.gate.count",
        "serving.experts.count",
        "serving.scatter.count",
        "trainer.epoch.count",
    ] {
        assert!(
            snaps[0].get(metric).and_then(Value::as_f64).is_some(),
            "metrics_snapshot missing {metric}"
        );
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn telemetry_toggle_does_not_change_predictions() {
    let _guard = obs_lock();
    // Telemetry must be observational only: training with the registry
    // enabled (no sink) yields bit-identical predictions to a run with
    // telemetry off.
    let run = |enabled: bool| -> Vec<f32> {
        adv_hsc_moe::obs::set_enabled(enabled);
        let (d, mut model, trainer) = tiny_setup();
        trainer.fit(&mut model, &d.train);
        let batch = Batch::from_split(&d.test, &(0..48).collect::<Vec<_>>());
        let out = model.predict(&batch);
        adv_hsc_moe::obs::set_enabled(false);
        out
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn gate_telemetry_drains_per_epoch() {
    let _guard = obs_lock();
    adv_hsc_moe::obs::set_enabled(true);
    let (d, mut model, _trainer) = tiny_setup();
    let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
    model.train_step(&batch);
    model.train_step(&batch);
    let t = model
        .take_gate_telemetry()
        .expect("telemetry accumulated while enabled");
    adv_hsc_moe::obs::set_enabled(false);
    assert_eq!(t.steps, 2);
    assert_eq!(t.dispatch.len(), 6);
    assert_eq!(
        t.dispatch.iter().sum::<u64>(),
        2 * 64 * 2,
        "K experts per example per step"
    );
    // Top-2 of 6 experts: masked entropy is within (0, ln 2].
    assert!(t.mean_entropy() > 0.0 && t.mean_entropy() <= f64::from(2f32.ln()) + 1e-6);
    // Drained: a second take returns None until the next enabled step.
    assert!(model.take_gate_telemetry().is_none());
}
