#![warn(missing_docs)]

//! Umbrella crate for the Adv & HSC-MoE reproduction workspace.
//!
//! Re-exports the member crates under short names so that examples and
//! integration tests can use one import root.

pub use amoe_autograd as autograd;
pub use amoe_core as moe;
pub use amoe_dataset as dataset;
pub use amoe_experiments as experiments;
pub use amoe_metrics as metrics;
pub use amoe_nn as nn;
pub use amoe_obs as obs;
pub use amoe_online as online;
pub use amoe_serve as serve;
pub use amoe_tensor as tensor;
pub use amoe_tsne as tsne;
